"""Minimal perfect hash function (MPHF).

SwitchPointer's pointer sets are bit arrays with exactly one bit per
end-host, indexed by a minimal perfect hash of the destination address
(§4.1.2).  The paper uses the FCH algorithm from the CMPH C library; we
implement the closely related *hash-displace* construction (Pagh's
"hash and displace", the core of both FCH and CHD) from scratch:

1. Partition the n keys into r = n/λ buckets by a first-level hash.
2. Process buckets largest-first.  For bucket B, search the smallest
   displacement d ≥ 0 such that ``h(key, d) mod n`` is a distinct, still
   free slot for every key in B.
3. Store one integer d per bucket.  Lookup is two hashes: bucket(key),
   then position(key, d[bucket]).

Properties matching the paper's requirements:

* **minimal** — exactly n slots for n keys, so a pointer set is n bits;
* **perfect** — zero collisions, so one bit per destination suffices;
* **one probe per packet** — the same slot index is reused across every
  level of the hierarchical pointer store;
* **small** — a few bits per key of displacement state (the paper quotes
  2.1 bits/key for FCH's seed state, 70 KB total per 100K hosts
  including auxiliary tables; :meth:`MinimalPerfectHash.size_bits`
  reports our measured figure).

Construction is deliberately an *offline* job: in the paper the analyzer
rebuilds and redistributes the MPHF only when the host set changes
(hours+); §4.1.2 notes temporary host failures simply leave bits unused.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Sequence

_SEED_BUCKET = 0xB0
_MAX_DISPLACEMENT = 1 << 20


class MphfBuildError(Exception):
    """Raised when construction fails (duplicate keys, search overflow)."""


def _hash64(data: bytes, seed: int) -> int:
    """Deterministic seeded 64-bit hash (stable across processes)."""
    digest = hashlib.blake2b(data, digest_size=8,
                             salt=struct.pack("<Q", seed)).digest()
    return int.from_bytes(digest, "little")


def _as_bytes(key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    return str(key).encode("utf-8")


class MinimalPerfectHash:
    """Minimal perfect hash over a fixed key set.

    Build with :meth:`build`; evaluate with :meth:`lookup`.  Lookup is
    defined only for member keys — foreign keys map to an arbitrary slot,
    exactly like the paper's switch-side bit update (a stale destination
    simply sets a bit nobody reads).  Use :meth:`contains` when
    membership must be checked (it compares a stored key fingerprint).
    """

    def __init__(self, n: int, bucket_seed: int, displacements: list[int],
                 fingerprints: list[int]):
        self._n = n
        self._bucket_seed = bucket_seed
        self._displacements = displacements
        self._fingerprints = fingerprints

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, keys: Iterable, *, bucket_load: float = 4.0,
              bucket_seed: int = _SEED_BUCKET) -> "MinimalPerfectHash":
        """Construct an MPHF for ``keys``.

        ``bucket_load`` λ is the average bucket size; smaller λ builds
        faster but stores more displacement entries.
        """
        key_bytes = [_as_bytes(k) for k in keys]
        n = len(key_bytes)
        if n == 0:
            raise MphfBuildError("cannot build an MPHF over zero keys")
        if len(set(key_bytes)) != n:
            raise MphfBuildError("duplicate keys")
        r = max(1, int(n / bucket_load))
        buckets: list[list[bytes]] = [[] for _ in range(r)]
        for kb in key_bytes:
            buckets[_hash64(kb, bucket_seed) % r].append(kb)

        displacements = [0] * r
        occupied = [False] * n
        order = sorted(range(r), key=lambda b: len(buckets[b]), reverse=True)
        for b in order:
            bucket = buckets[b]
            if not bucket:
                continue
            d = 0
            while True:
                slots = [_hash64(kb, d) % n for kb in bucket]
                if len(set(slots)) == len(slots) and not any(
                        occupied[s] for s in slots):
                    for s in slots:
                        occupied[s] = True
                    displacements[b] = d
                    break
                d += 1
                if d > _MAX_DISPLACEMENT:
                    raise MphfBuildError(
                        f"displacement search exceeded {_MAX_DISPLACEMENT} "
                        f"for a bucket of size {len(bucket)}")
        fingerprints = [0] * n
        for kb in key_bytes:
            b = _hash64(kb, bucket_seed) % r
            slot = _hash64(kb, displacements[b]) % n
            fingerprints[slot] = _hash64(kb, 0xF1) & 0xFFFF
        return cls(n, bucket_seed, displacements, fingerprints)

    # -- evaluation ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of keys == number of slots."""
        return self._n

    def lookup(self, key) -> int:
        """Slot in [0, n) for ``key`` (meaningful for member keys only)."""
        kb = _as_bytes(key)
        b = _hash64(kb, self._bucket_seed) % len(self._displacements)
        return _hash64(kb, self._displacements[b]) % self._n

    def contains(self, key) -> bool:
        """Probabilistic membership check via a 16-bit slot fingerprint."""
        kb = _as_bytes(key)
        slot = self.lookup(kb)
        return self._fingerprints[slot] == (_hash64(kb, 0xF1) & 0xFFFF)

    # -- size accounting ----------------------------------------------------

    def size_bits(self, include_fingerprints: bool = False) -> int:
        """Bits of state a switch must hold to evaluate the function.

        Displacements dominate; the per-slot fingerprints exist only for
        the analyzer-side ``contains`` and are excluded by default, as a
        switch does not need them (mirrors the paper's 2.1 bits/key FCH
        figure counting only seed state).
        """
        bits = 0
        for d in self._displacements:
            bits += max(1, d.bit_length())
        bits += 32  # n, seed
        if include_fingerprints:
            bits += 16 * self._n
        return bits

    def bits_per_key(self) -> float:
        return self.size_bits() / self._n

    # -- serialization (analyzer -> switches distribution) -----------------

    def serialize(self) -> bytes:
        head = struct.pack("<QQI", self._n, self._bucket_seed,
                           len(self._displacements))
        body = b"".join(struct.pack("<I", d) for d in self._displacements)
        fps = b"".join(struct.pack("<H", f) for f in self._fingerprints)
        return head + body + fps

    @classmethod
    def deserialize(cls, blob: bytes) -> "MinimalPerfectHash":
        n, seed, r = struct.unpack_from("<QQI", blob, 0)
        off = struct.calcsize("<QQI")
        displacements = list(struct.unpack_from(f"<{r}I", blob, off))
        off += 4 * r
        fingerprints = list(struct.unpack_from(f"<{n}H", blob, off))
        return cls(n, seed, displacements, fingerprints)


class HostDirectory:
    """Bidirectional host ↔ slot mapping built on the MPHF.

    Switches only need slot := lookup(dst).  The analyzer additionally
    needs the reverse direction (bit → host name) to turn a retrieved
    pointer set back into a list of end-hosts to contact; it keeps the
    host list it built the MPHF from, ordered by slot.
    """

    def __init__(self, hosts: Sequence[str], *, bucket_load: float = 4.0):
        self.mphf = MinimalPerfectHash.build(hosts, bucket_load=bucket_load)
        self._hosts = list(hosts)
        self._slot_to_host: list[str] = [""] * self.mphf.n
        for h in hosts:
            self._slot_to_host[self.mphf.lookup(h)] = h

    @property
    def n(self) -> int:
        return self.mphf.n

    @property
    def hosts(self) -> list[str]:
        return list(self._hosts)

    def slot_of(self, host: str) -> int:
        return self.mphf.lookup(host)

    def host_of(self, slot: int) -> str:
        return self._slot_to_host[slot]

    def hosts_of(self, slots: Iterable[int]) -> list[str]:
        return sorted(self._slot_to_host[s] for s in slots)
