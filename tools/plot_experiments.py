#!/usr/bin/env python3
"""Render committed experiment reports into degradation figures.

Usage::

    python tools/plot_experiments.py            # (re)write the figures
    python tools/plot_experiments.py --check    # exit 1 if out of date

Every ``results/experiments/<name>/report.json`` whose registered
``ExperimentSpec`` declares a figure becomes
``results/figures/<name>.svg`` via the deterministic pure-Python SVG
renderer (:func:`repro.experiment.figure_svg`) — same bytes from the
same report, so ``--check`` can hold the committed figures to the
committed reports exactly like the generated-docs checks.  Reports are
schema-validated before anything renders; an invalid report fails the
run rather than producing a figure from garbage.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
REPORTS = REPO / "results" / "experiments"
FIGURES = REPO / "results" / "figures"

sys.path.insert(0, str(REPO / "src"))

from repro.experiment import (  # noqa: E402
    EXPERIMENTS,
    ExperimentError,
    figure_svg,
    validate_experiment_report,
)


def render_all() -> dict[Path, str]:
    """``figure path -> svg text`` for every plottable committed report."""
    figures: dict[Path, str] = {}
    for report_path in sorted(REPORTS.glob("*/report.json")):
        doc = json.loads(report_path.read_text(encoding="utf-8"))
        problems = validate_experiment_report(doc)
        if problems:
            raise ExperimentError(
                f"{report_path.relative_to(REPO)}: invalid report: "
                + "; ".join(problems)
            )
        name = doc["experiment"]
        spec = EXPERIMENTS.get(name)
        if spec.figure is None:
            continue
        figures[FIGURES / f"{name}.svg"] = figure_svg(doc, spec.figure)
    return figures


def main(argv: list[str]) -> int:
    try:
        figures = render_all()
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not figures:
        print(
            f"no committed reports under {REPORTS.relative_to(REPO)} "
            f"declare figures",
            file=sys.stderr,
        )
        return 2
    if "--check" in argv:
        stale = []
        for path, text in figures.items():
            current = path.read_text(encoding="utf-8") if path.exists() else ""
            if current != text:
                stale.append(path.relative_to(REPO))
        if stale:
            print(
                "out of date: "
                + ", ".join(str(p) for p in stale)
                + "; run: python tools/plot_experiments.py",
                file=sys.stderr,
            )
            return 1
        print(f"{len(figures)} figure(s) up to date")
        return 0
    FIGURES.mkdir(parents=True, exist_ok=True)
    for path, text in figures.items():
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
