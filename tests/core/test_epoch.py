"""Unit tests for epoch arithmetic and range extrapolation."""

import pytest

from repro.core.epoch import (EpochClock, EpochRange, EpochRangeEstimator,
                              max_pointers_to_examine, unwrap_epoch)


class TestEpochClock:
    def test_epoch_of_basic(self):
        clock = EpochClock(alpha_ms=10)
        assert clock.epoch_of(0.0) == 0
        assert clock.epoch_of(0.0099) == 0
        assert clock.epoch_of(0.010) == 1
        assert clock.epoch_of(0.095) == 9

    def test_skew_shifts_epochs(self):
        fast = EpochClock(alpha_ms=10, skew_s=0.005)
        slow = EpochClock(alpha_ms=10, skew_s=-0.005)
        assert fast.epoch_of(0.006) == 1
        assert slow.epoch_of(0.006) == 0

    def test_epoch_start_inverse(self):
        clock = EpochClock(alpha_ms=10, skew_s=0.003)
        for e in (0, 5, 123):
            start = clock.epoch_start(e)
            assert clock.epoch_of(start) == e
            assert clock.epoch_of(start - 1e-9) == e - 1

    def test_time_into_epoch(self):
        clock = EpochClock(alpha_ms=10)
        assert clock.time_into_epoch(0.013) == pytest.approx(0.003)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EpochClock(alpha_ms=0)


class TestEpochRange:
    def test_contains_and_iter(self):
        rng = EpochRange(3, 6)
        assert 3 in rng and 6 in rng and 7 not in rng
        assert list(rng) == [3, 4, 5, 6]
        assert len(rng) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EpochRange(5, 4)

    def test_union(self):
        assert EpochRange(1, 3).union(EpochRange(5, 8)) == EpochRange(1, 8)

    def test_intersects(self):
        assert EpochRange(1, 5).intersects(EpochRange(5, 9))
        assert not EpochRange(1, 4).intersects(EpochRange(5, 9))


class TestEstimatorPaperExample:
    """§4.2.1: α = 10 ms, ε = α, Δ = 2α, epoch observed ei at the
    embedding switch; paper gives [ei−3, ei+1] for a 1-hop-upstream
    switch and [ei−1, ei+3] for 1-hop-downstream."""

    @pytest.fixture
    def est(self):
        return EpochRangeEstimator(alpha_ms=10, epsilon_ms=10, delta_ms=20)

    def test_one_hop_upstream(self, est):
        rng = est.range_for(100, hop_delta=-1)
        assert (rng.lo, rng.hi) == (97, 101)

    def test_one_hop_downstream(self, est):
        rng = est.range_for(100, hop_delta=+1)
        assert (rng.lo, rng.hi) == (99, 103)

    def test_embedder_itself_widened_by_skew(self, est):
        rng = est.range_for(100, hop_delta=0)
        assert (rng.lo, rng.hi) == (99, 101)

    def test_figure6_path(self, est):
        # S1 S2 [S3=embedder] S4 S5 with ei=100:
        ranges = est.ranges_for_path(["S1", "S2", "S3", "S4", "S5"],
                                     embed_index=2, observed_epoch=100)
        assert (ranges["S2"].lo, ranges["S2"].hi) == (97, 101)
        assert (ranges["S4"].lo, ranges["S4"].hi) == (99, 103)
        assert (ranges["S1"].lo, ranges["S1"].hi) == (95, 101)
        assert (ranges["S5"].lo, ranges["S5"].hi) == (99, 105)

    def test_embed_index_validation(self, est):
        with pytest.raises(ValueError):
            est.ranges_for_path(["S1"], embed_index=2, observed_epoch=0)


class TestEstimatorGeneral:
    def test_range_widens_with_hops(self):
        est = EpochRangeEstimator(alpha_ms=10, epsilon_ms=5, delta_ms=10)
        widths = [len(est.range_for(50, hop_delta=-j)) for j in (1, 2, 3)]
        assert widths == sorted(widths)
        assert widths[0] < widths[-1]

    def test_zero_epsilon_zero_delta(self):
        est = EpochRangeEstimator(alpha_ms=10, epsilon_ms=0, delta_ms=0)
        rng = est.range_for(7, hop_delta=-2)
        assert (rng.lo, rng.hi) == (7, 7)

    def test_span_epochs_ceiling(self):
        est = EpochRangeEstimator(alpha_ms=10, epsilon_ms=1, delta_ms=2)
        assert est.span_epochs(1) == 1   # ceil(3/10)
        assert est.span_epochs(5) == 2   # ceil(11/10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EpochRangeEstimator(alpha_ms=0, epsilon_ms=1, delta_ms=1)
        with pytest.raises(ValueError):
            EpochRangeEstimator(alpha_ms=10, epsilon_ms=-1, delta_ms=1)


class TestUnwrapEpoch:
    def test_recent_epoch_recovered(self):
        # absolute epoch 8202 -> tag 8202 % 4096 = 10
        assert unwrap_epoch(10, reference_epoch=8195) == 8202

    def test_wrap_boundary_below(self):
        # reference just after a wrap; tag from just before it
        assert unwrap_epoch(4095, reference_epoch=4097) == 4095

    def test_wrap_boundary_above(self):
        assert unwrap_epoch(1, reference_epoch=4094) == 4097

    def test_identity_when_no_wrap(self):
        assert unwrap_epoch(42, reference_epoch=40) == 42

    def test_custom_modulus(self):
        assert unwrap_epoch(3, reference_epoch=19, modulus=8) == 19

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            unwrap_epoch(1, 1, modulus=0)


class TestMaxPointers:
    def test_paper_ratio(self):
        # max_delay / alpha pointers per switch (§4.2.1)
        assert max_pointers_to_examine(14, 10) == 2
        assert max_pointers_to_examine(30, 10) == 3

    def test_at_least_one(self):
        assert max_pointers_to_examine(0.1, 10) == 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            max_pointers_to_examine(10, 0)
