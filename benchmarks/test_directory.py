"""Directory-set benchmark: the pointer-union hot path and sketch ops.

Two measurements, both gated by the committed baseline
(``benchmarks/baselines/directory.json``):

* **exact union at 65k slots** — the per-epoch coalescing hot path.
  :meth:`PointerSet.union_into` counts only the newly-set bits
  (``merged ^ theirs``) instead of re-scanning the result array; the
  reference here replays the pre-incremental path (byte-wise OR in
  Python plus a full popcount rescan via ``load``) and the benchmark
  asserts the incremental path's speedup at the 65 536-slot directory
  size the satellite calls out.
* **bloom fold** — the sketch ops :class:`HierarchicalPointerStore`
  drives per epoch under a sub-S bit budget: ``set_slot`` inserts,
  ``union_into`` coalescing, ``to_bytes``/``decode_directory_set``
  round-trip, and an ``estimate``.  The superset contract is asserted
  over every inserted slot (a sketch may flood, never drop).

Emits ``results/directory.json`` for the CI bench-gate artifact.
"""

import random
import time

import pytest

from repro.core.pointer import PointerSet
from repro.directory import decode_directory_set, make_directory_set

from benchmarks.reporting import emit

N_SLOTS = 65_536  # one bit per host at the 65k-host directory size
N_SETS = 192      # epoch pointer sets coalesced per union pass
DENSITY = 1024    # hosts touching each epoch set
BLOOM_SETS = 64
BLOOM_BITS = 8_192  # 1/8 bit per host: well under saturation
HASHES = 4
ROUNDS = 3


def prepare():
    """Pre-draw the per-epoch slot samples (excluded from timing)."""
    rng = random.Random(7)
    universe = range(N_SLOTS)
    return [rng.sample(universe, DENSITY) for _ in range(N_SETS)]


def build_exact(samples):
    sets = []
    for slots in samples:
        ps = PointerSet(N_SLOTS)
        for slot in slots:
            ps.set_slot(slot)
        sets.append(ps)
    return sets


def bench_incremental(sets):
    """The product path: big-int OR + xor-popcount of the new bits."""
    acc = PointerSet(N_SLOTS)
    start = time.perf_counter()
    for ps in sets:
        ps.union_into(acc)
    return time.perf_counter() - start, acc


def bench_recount(sets):
    """The pre-incremental reference: byte loop + full rescan."""
    acc = PointerSet(N_SLOTS)
    start = time.perf_counter()
    for ps in sets:
        merged = bytes(a | b for a, b in zip(ps.to_bytes(), acc.to_bytes()))
        acc.load(merged)  # full popcount rescan
    return time.perf_counter() - start, acc


def bench_bloom_fold(samples):
    """Insert + coalesce + serialize round-trip + estimate, timed."""
    start = time.perf_counter()
    acc = make_directory_set("bloom", N_SLOTS, bits=BLOOM_BITS,
                             hashes=HASHES)
    for slots in samples[:BLOOM_SETS]:
        sketch = make_directory_set("bloom", N_SLOTS, bits=BLOOM_BITS,
                                    hashes=HASHES)
        for slot in slots:
            sketch.set_slot(slot)
        sketch.union_into(acc)
    decoded = decode_directory_set("bloom", N_SLOTS, acc.to_bytes(),
                                   bits=BLOOM_BITS, hashes=HASHES)
    estimate = decoded.estimate()
    return time.perf_counter() - start, decoded, estimate


def run_bench():
    samples = prepare()
    sets = build_exact(samples)
    inc_s, inc_acc = min(
        (bench_incremental(sets) for _ in range(ROUNDS)),
        key=lambda x: x[0])
    ref_s, ref_acc = min(
        (bench_recount(sets) for _ in range(ROUNDS)),
        key=lambda x: x[0])
    bloom_s, decoded, estimate = min(
        (bench_bloom_fold(samples) for _ in range(ROUNDS)),
        key=lambda x: x[0])
    return samples, inc_s, inc_acc, ref_s, ref_acc, bloom_s, decoded, \
        estimate


@pytest.mark.benchmark(group="directory")
def test_directory_union_and_sketch_ops(benchmark):
    (samples, inc_s, inc_acc, ref_s, ref_acc, bloom_s, decoded,
     estimate) = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    truth = set()
    for slots in samples:
        truth.update(slots)
    speedup = ref_s / inc_s
    emit("directory", [
        f"slots: {N_SLOTS}   epoch sets: {N_SETS}   "
        f"density: {DENSITY} hosts/set",
        f"union_into (incremental popcount): {inc_s * 1e3:8.2f} ms",
        f"reference (byte OR + full rescan): {ref_s * 1e3:8.2f} ms",
        f"speedup: {speedup:5.2f}x",
        f"bloom fold ({BLOOM_SETS} sets @ {BLOOM_BITS} bits, "
        f"k={HASHES}): {bloom_s * 1e3:8.2f} ms   "
        f"estimate: {estimate}",
        "(union_into counts only merged^theirs; the bloom fold times "
        "insert + coalesce + serialize round-trip + estimate)"],
        data={
            "n_slots": N_SLOTS,
            "n_sets": N_SETS,
            "density": DENSITY,
            "union_into_s": round(inc_s, 4),
            "recount_s": round(ref_s, 4),
            "union_speedup": round(speedup, 2),
            "bloom_sets": BLOOM_SETS,
            "bloom_bits": BLOOM_BITS,
            "bloom_fold_s": round(bloom_s, 4),
            "bloom_estimate": estimate,
        })

    # both union paths must agree bit for bit, and with the drawn truth
    assert inc_acc == ref_acc
    assert inc_acc.popcount == ref_acc.popcount == len(truth)
    assert speedup >= 3, speedup

    # superset contract: the folded sketch may flood, never drop
    bloom_truth = set()
    for slots in samples[:BLOOM_SETS]:
        bloom_truth.update(slots)
    assert all(decoded.test_slot(slot) for slot in bloom_truth)
