"""Discrete-event simulation engine.

The engine is the substrate everything else in :mod:`repro.simnet` runs on.
It is a classic calendar-queue simulator: events are ``(time, seq, fn)``
triples in a binary heap, executed in non-decreasing time order.  Ties are
broken by insertion order so the simulation is fully deterministic.

Time is measured in **seconds** as a float.  The scenarios in the paper
span microseconds (packet serialization on 1-10 Gbps links) to seconds
(query latencies), which float seconds represent with ample precision.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(0.5, fired.append, "a")
>>> sim.schedule(0.25, fired.append, "b")  # doctest: +ELLIPSIS
<repro.simnet.engine.EventHandle object at ...>
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised on invalid use of the simulation engine."""


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  ``cancelled`` is public so callers can inspect state.
    """

    __slots__ = ("time", "cancelled", "_fn", "_args", "_kwargs")

    def __init__(self, time: float, fn: Callable, args: tuple, kwargs: dict):
        self.time = time
        self.cancelled = False
        self._fn = fn
        self._args = args
        self._kwargs = kwargs

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self._fn(*self._args, **self._kwargs)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated clock value in seconds.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable, *args: Any,
                 **kwargs: Any) -> EventHandle:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now.

        Returns an :class:`EventHandle` that can be used to cancel the event.
        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, **kwargs)

    def schedule_at(self, when: float, fn: Callable, *args: Any,
                    **kwargs: Any) -> EventHandle:
        """Schedule ``fn`` at absolute simulated time ``when`` (seconds)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self._now}")
        handle = EventHandle(when, fn, args, kwargs)
        heapq.heappush(self._heap, (when, next(self._seq), handle))
        return handle

    # -- fire-and-forget fast path --------------------------------------------

    def call_after(self, delay: float, fn: Callable[[Any], None],
                   arg: Any = None) -> None:
        """Schedule ``fn(arg)`` ``delay`` seconds from now — no handle.

        The lightweight counterpart of :meth:`schedule` for the
        per-packet hot path (serialization, propagation, CBR spacing):
        the event is a bare ``(when, seq, fn, arg)`` tuple in the same
        heap, so ordering and determinism are identical to
        :meth:`schedule`, but no :class:`EventHandle` is allocated and
        the event cannot be cancelled.  Use :meth:`schedule` whenever
        cancellation is possible.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._seq), fn, arg))

    def call_at(self, when: float, fn: Callable[[Any], None],
                arg: Any = None) -> None:
        """Absolute-time variant of :meth:`call_after`."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self._now}")
        heapq.heappush(self._heap, (when, next(self._seq), fn, arg))

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have been executed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose naturally.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            executed = 0
            heap = self._heap
            pop = heapq.heappop
            while heap:
                entry = heap[0]
                when = entry[0]
                if until is not None and when > until:
                    break
                pop(heap)
                if len(entry) == 4:
                    # call_after fast-path event: (when, seq, fn, arg)
                    self._now = when
                    entry[2](entry[3])
                else:
                    handle = entry[2]
                    if handle.cancelled:
                        continue
                    self._now = when
                    handle.fire()
                self._processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self) -> None:
        """Run until no events remain."""
        self.run()


class AlternatingTimer:
    """Alternates between two callbacks with independent dwell times.

    ``fn_a`` fires ``start_delay`` seconds from construction; ``fn_b``
    fires ``period_a`` seconds after that; ``fn_a`` again ``period_b``
    seconds later, and so on.  The canonical use is a two-state fault
    process — e.g. a link that stays down for ``period_a`` and up for
    ``period_b`` (:class:`repro.simnet.topology.LinkFlapper`).
    """

    def __init__(self, sim: Simulator, period_a: float, fn_a: Callable,
                 period_b: float, fn_b: Callable, *,
                 start_delay: float = 0.0):
        if period_a <= 0 or period_b <= 0:
            raise SimulationError("dwell periods must be positive")
        self._sim = sim
        self._periods = (period_a, period_b)
        self._fns = (fn_a, fn_b)
        self._phase = 0
        self._stopped = False
        self.transitions = 0
        self._handle = sim.schedule(start_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        phase = self._phase
        self.transitions += 1
        self._fns[phase]()
        if self._stopped:  # callback may stop the timer
            return
        self._phase = 1 - phase
        self._handle = self._sim.schedule(self._periods[phase], self._fire)

    def stop(self) -> None:
        """Stop the timer.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()


class PeriodicTimer:
    """Fires a callback every ``period`` seconds until stopped.

    Used for epoch rotation at switches, throughput sampling windows at
    end-hosts, and rule updates in the OpenFlow model.
    """

    def __init__(self, sim: Simulator, period: float, fn: Callable,
                 *args: Any, start_delay: Optional[float] = None,
                 jitter_fn: Optional[Callable[[], float]] = None):
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = period
        self._fn = fn
        self._args = args
        self._stopped = False
        self._jitter_fn = jitter_fn
        self.ticks = 0
        first = period if start_delay is None else start_delay
        self._handle = sim.schedule(first, self._tick)

    @property
    def period(self) -> float:
        return self._period

    def _tick(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self._fn(*self._args)
        if self._stopped:  # callback may stop the timer
            return
        delay = self._period
        if self._jitter_fn is not None:
            delay = max(0.0, delay + self._jitter_fn())
        self._handle = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop the timer.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
