"""The experiment runner: a seeded run table, resumable on disk.

:class:`Experiment` expands an :class:`~repro.experiment.registry.
ExperimentSpec` into its run table (``table.py``), executes every
``(point, rep)`` cell through the existing sweep machinery
(:func:`repro.sweep.execute_point` — same payload, same replay
contract), and persists one artifact directory per study:

    <dir>/manifest.json            # table identity (refuses mismatches)
    <dir>/runs/point000_rep00.json # one document per completed run
    <dir>/report.json              # aggregated ExperimentReport

Runs land on disk as they finish (written to a temp name, then
``os.replace``\\ d, so a kill mid-write leaves no half document).  On
re-invocation every intact run document whose seed matches the table is
reused untouched and only the missing cells execute — an interrupted
study resumes, and because the report aggregates only seed-determined
fields, the resumed ``report.json`` is byte-identical to an
uninterrupted one.

``max_runs`` bounds how many *new* runs one invocation executes (the
interruption hook the resumability tests drive); a study with cells
still missing gets no report until a later invocation completes it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Callable, Optional

from ..sweep import DEFAULT_BASE_SEED, PointResult, SweepSpec, execute_point
from .registry import ExperimentError, ExperimentSpec
from .report import (
    ExperimentReport,
    MANIFEST_SCHEMA,
    RUN_SCHEMA,
    aggregate_runs,
)
from .table import Run, expand_run_table

#: ``on_run`` progress events.
RESUMED = "resumed"
EXECUTED = "executed"


def _dump(doc: dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _write_atomic(path: Path, doc: dict[str, Any]) -> None:
    """Write-then-rename so an interrupted write never leaves a document
    the resume scan would mistake for a completed run."""
    tmp = path.with_suffix(".tmp")
    tmp.write_text(_dump(doc), encoding="utf-8")
    os.replace(tmp, path)


class Experiment:
    """One registered study: a sweep × a run table × derived seeds."""

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        grid: Optional[dict[str, list[Any]]] = None,
        reps: Optional[int] = None,
        base_seed: int = DEFAULT_BASE_SEED,
        extra_knobs: Optional[dict[str, Any]] = None,
    ):
        from ..sweep import SWEEPS

        self.spec = spec
        self.sweep: SweepSpec = SWEEPS.get(spec.sweep)
        self.grid = (
            {axis: list(vals) for axis, vals in spec.axes.items()}
            if grid is None
            else grid
        )
        for axis in self.grid:
            if axis not in self.sweep.axes:
                raise ExperimentError(
                    f"unknown axis {axis!r} for experiment "
                    f"{spec.name!r} (sweep {spec.sweep!r}); valid: "
                    f"{', '.join(sorted(self.sweep.axes))}"
                )
        self.reps = spec.reps if reps is None else reps
        if self.reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {self.reps}")
        self.base_seed = base_seed
        self.extra_knobs = dict(extra_knobs or {})
        swept = {self.sweep.axes[axis] for axis in self.grid}
        clash = swept & set(self.extra_knobs)
        if clash:
            raise ExperimentError(
                f"--knob would silently override swept axis knob(s) "
                f"{sorted(clash)}; drop the knob or the axis"
            )
        self.runs: list[Run] = expand_run_table(
            self.grid, self.reps, base_seed
        )
        # resolve every cell's knobs up front: an invalid table fails
        # before any run burns wall time (sweep-runner posture)
        self.knobs: dict[int, dict[str, Any]] = {}
        for run in self.runs:
            if run.point in self.knobs:
                continue
            knobs = self.sweep.knobs_for(run.params)
            knobs.update(self.spec.base_knobs)
            knobs.update(self.extra_knobs)
            self.knobs[run.point] = knobs

    # -- artifact layout ----------------------------------------------------

    @staticmethod
    def run_filename(run: Run) -> str:
        return f"point{run.point:03d}_rep{run.rep:02d}.json"

    def manifest(self) -> dict[str, Any]:
        """The table identity a resumed invocation must reproduce."""
        return {
            "schema": MANIFEST_SCHEMA,
            "experiment": self.spec.name,
            "sweep": self.sweep.name,
            "scenario": self.sweep.scenario,
            "base_seed": self.base_seed,
            "reps": self.reps,
            "grid": {axis: list(vals) for axis, vals in self.grid.items()},
            "runs": len(self.runs),
        }

    def _check_manifest(self, out_dir: Path) -> None:
        path = out_dir / "manifest.json"
        manifest = self.manifest()
        if path.exists():
            existing = json.loads(path.read_text(encoding="utf-8"))
            if existing != manifest:
                raise ExperimentError(
                    f"{path} belongs to a different run table (seed, "
                    f"grid, or reps changed) — point --out-dir at a "
                    f"fresh directory or restore the original "
                    f"parameters"
                )
        else:
            out_dir.mkdir(parents=True, exist_ok=True)
            _write_atomic(path, manifest)

    def _load_completed(self, runs_dir: Path) -> dict[int, dict[str, Any]]:
        """Intact artifacts by run index; mismatches fail loudly."""
        completed: dict[int, dict[str, Any]] = {}
        for run in self.runs:
            path = runs_dir / self.run_filename(run)
            if not path.exists():
                continue
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                # a run killed mid-write before atomic rename existed,
                # or a truncated copy: treat as not-yet-run
                continue
            if (
                doc.get("schema") != RUN_SCHEMA
                or doc.get("seed") != run.seed
                or doc.get("params") != run.params
            ):
                raise ExperimentError(
                    f"{path} does not match this run table (expected "
                    f"seed {run.seed}, params {run.params}) — stale "
                    f"artifact from another study?"
                )
            completed[run.index] = doc
        return completed

    def _artifact(self, run: Run, result: PointResult) -> dict[str, Any]:
        return {
            "schema": RUN_SCHEMA,
            "experiment": self.spec.name,
            "point": run.point,
            "rep": run.rep,
            "params": dict(run.params),
            "seed": run.seed,
            "result": result.to_json(),
        }

    def _payload(self, run: Run) -> tuple:
        return (
            self.sweep.scenario,
            self.knobs[run.point],
            run.seed,
            self.sweep.expect_problem,
            self._expect_suspect(self.knobs[run.point]),
            run.index,
            run.params,
        )

    def _expect_suspect(self, knobs: dict[str, Any]) -> Optional[str]:
        knob = self.sweep.expect_suspect_knob
        if knob is None:
            return None
        if knob in knobs:
            return knobs[knob]
        from ..scenarios import REGISTRY

        return REGISTRY.get(self.sweep.scenario).spec.knobs[knob].default

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        out_dir: Path,
        *,
        workers: int = 1,
        max_runs: Optional[int] = None,
        on_run: Optional[Callable[[Run, str], None]] = None,
    ) -> Optional[ExperimentReport]:
        """Run every missing cell; aggregate once the table is complete.

        Returns the :class:`ExperimentReport` (also written to
        ``report.json``) when all runs exist, or ``None`` when
        ``max_runs`` stopped the invocation with cells still missing.
        ``on_run`` observes each cell with :data:`RESUMED` or
        :data:`EXECUTED` as it is accounted for.
        """
        if workers < 1:
            raise ExperimentError("workers must be >= 1")
        out_dir = Path(out_dir)
        self._check_manifest(out_dir)
        runs_dir = out_dir / "runs"
        runs_dir.mkdir(exist_ok=True)
        completed = self._load_completed(runs_dir)
        for run in self.runs:
            if run.index in completed and on_run is not None:
                on_run(run, RESUMED)
        todo = [run for run in self.runs if run.index not in completed]
        if max_runs is not None:
            todo = todo[:max_runs]

        def record(run: Run, result: PointResult) -> None:
            doc = self._artifact(run, result)
            _write_atomic(runs_dir / self.run_filename(run), doc)
            completed[run.index] = doc
            if on_run is not None:
                on_run(run, EXECUTED)

        if workers == 1 or len(todo) <= 1:
            for run in todo:
                record(run, execute_point(self._payload(run)))
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            with ProcessPoolExecutor(
                max_workers=min(workers, len(todo)), mp_context=ctx
            ) as pool:
                futures = {
                    pool.submit(execute_point, self._payload(run)): run
                    for run in todo
                }
                for future in as_completed(futures):
                    run = futures[future]
                    try:
                        result = future.result()
                    except Exception as exc:  # noqa: BLE001 - a dead
                        # worker's cell becomes an errored run, exactly
                        # like a point that raised in-process
                        result = PointResult(
                            index=run.index,
                            params=run.params,
                            knobs=self.knobs[run.point],
                            seed=run.seed,
                            error=(
                                f"worker died: {type(exc).__name__}: {exc}"
                            ),
                        )
                    record(run, result)

        if len(completed) < len(self.runs):
            return None
        report = aggregate_runs(
            experiment=self.spec.name,
            sweep=self.sweep.name,
            scenario=self.sweep.scenario,
            expect_problem=self.sweep.expect_problem,
            base_seed=self.base_seed,
            reps=self.reps,
            grid=self.grid,
            artifacts=[completed[run.index] for run in self.runs],
        )
        _write_atomic(out_dir / "report.json", report.to_json())
        return report
