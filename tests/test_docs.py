"""Docs health: the generated catalogue is in sync with the registry,
and intra-repo markdown links resolve (same checks CI's docs job runs)."""

import subprocess
import sys
from pathlib import Path

from repro.scenarios import REGISTRY, catalog_markdown
from repro.sweep import SWEEPS, sweeps_markdown

REPO = Path(__file__).resolve().parent.parent


class TestScenarioCatalog:
    def test_scenarios_md_matches_registry(self):
        """docs/SCENARIOS.md must be regenerated when the registry
        changes (python tools/gen_scenario_docs.py)."""
        page = (REPO / "docs" / "SCENARIOS.md").read_text(encoding="utf-8")
        assert page == catalog_markdown()

    def test_every_scenario_documented(self):
        page = (REPO / "docs" / "SCENARIOS.md").read_text(encoding="utf-8")
        for spec in REGISTRY.specs():
            assert f"## `{spec.name}`" in page
            assert spec.summary in page
            for knob in spec.knobs:
                assert f"`{knob}`" in page


class TestSweepCatalog:
    def test_sweeps_md_matches_registry(self):
        """docs/SWEEPS.md must be regenerated when the sweep registry
        changes (python tools/gen_sweep_docs.py)."""
        page = (REPO / "docs" / "SWEEPS.md").read_text(encoding="utf-8")
        assert page == sweeps_markdown()

    def test_every_sweep_documented(self):
        page = (REPO / "docs" / "SWEEPS.md").read_text(encoding="utf-8")
        for spec in SWEEPS.specs():
            assert f"## `{spec.scenario}`" in page
            assert spec.summary in page
            for axis in spec.axes:
                assert f"`{axis}`" in page

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_sweep_docs.py"),
             "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_readme_links_sweeps_doc(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/SWEEPS.md" in readme


class TestArchitecturePage:
    def test_exists_and_mentions_layers(self):
        page = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        for anchor in ("switchd", "hostd", "analyzer", "scenario registry",
                       "src/repro/scenarios/"):
            assert anchor in page

    def test_readme_links_both_docs(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SCENARIOS.md" in readme


class TestLinkChecker:
    def test_intra_repo_links_resolve(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_links.py")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_checker_catches_broken_link(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md)", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_links.py"),
             str(bad)],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert "no/such/file.md" in proc.stdout

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_scenario_docs.py"),
             "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
