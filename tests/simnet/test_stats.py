"""Unit tests for measurement probes."""

import pytest

from repro.simnet.packet import FlowKey, PROTO_UDP, make_udp
from repro.simnet.stats import (InterArrivalProbe, ThroughputProbe,
                                attach_flow_tap, percentile)
from repro.simnet.topology import Network


class TestThroughputProbe:
    def test_bins_by_window(self):
        probe = ThroughputProbe(window=0.001)
        probe.observe(125_000, 0.0005)   # window 0
        probe.observe(125_000, 0.0015)   # window 1
        series = probe.series()
        assert len(series) == 2
        # 125 kB in 1 ms = 1 Gbps
        assert series[0][1] == pytest.approx(1.0)
        assert series[1][1] == pytest.approx(1.0)

    def test_empty_windows_zero_filled(self):
        probe = ThroughputProbe(window=0.001)
        probe.observe(1000, 0.0005)
        probe.observe(1000, 0.0045)
        series = probe.series()
        assert len(series) == 5
        assert series[1][1] == 0.0
        assert series[2][1] == 0.0

    def test_series_until_extends_with_zeros(self):
        probe = ThroughputProbe(window=0.001)
        probe.observe(1000, 0.0005)
        series = probe.series(until=0.005)
        assert len(series) == 5
        assert all(g == 0.0 for _, g in series[1:])

    def test_rate_at(self):
        probe = ThroughputProbe(window=0.001)
        probe.observe(125_000, 0.0023)
        assert probe.rate_at(0.0027) == pytest.approx(1.0)
        assert probe.rate_at(0.0005) == 0.0

    def test_mean_gbps(self):
        probe = ThroughputProbe(window=0.001)
        probe.observe(125_000, 0.0001)
        assert probe.mean_gbps(0.001) == pytest.approx(1.0)
        assert probe.mean_gbps(0.0) == 0.0

    def test_t0_offset(self):
        probe = ThroughputProbe(window=0.001, t0=0.010)
        probe.observe(1000, 0.0105)
        assert probe.series()[0][0] == pytest.approx(0.010)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ThroughputProbe(window=0)

    def test_empty_series(self):
        assert ThroughputProbe().series() == []


class TestInterArrivalProbe:
    def test_gaps_recorded(self):
        probe = InterArrivalProbe()
        pkt = make_udp("a", "b", 1, 2, 100)
        for t in (0.001, 0.002, 0.005):
            probe.on_packet(pkt, t)
        gaps = [g for _, g in probe.samples]
        assert gaps == pytest.approx([0.001, 0.003])

    def test_max_gap_windows(self):
        probe = InterArrivalProbe()
        pkt = make_udp("a", "b", 1, 2, 100)
        for t in (0.001, 0.002, 0.010, 0.011):
            probe.on_packet(pkt, t)
        assert probe.max_gap() == pytest.approx(0.008)
        assert probe.max_gap_in(0.0, 0.005) == pytest.approx(0.001)

    def test_mean_gap_empty(self):
        assert InterArrivalProbe().mean_gap() == 0.0


class TestFlowTap:
    def test_tap_filters_by_flow(self):
        net = Network()
        s1, s2 = net.add_switch("S1"), net.add_switch("S2")
        net.connect(s1, s2)
        hosts = {}
        for name, sw in (("a", s1), ("b", s2), ("c", s1), ("d", s2)):
            hosts[name] = net.add_host(name)
            net.connect(hosts[name], sw)
        net.compute_routes()
        probe = ThroughputProbe(window=0.001)
        watched = FlowKey("a", "b", 1, 2, PROTO_UDP)
        iface = net.link_between("S1", "S2").iface_of(s1)
        attach_flow_tap(iface, watched, probe)
        hosts["a"].send(make_udp("a", "b", 1, 2, 1000))
        hosts["c"].send(make_udp("c", "d", 3, 4, 1000))
        net.run()
        assert probe.total_bytes == 1000  # only the watched flow


class TestPercentile:
    def test_basic(self):
        data = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(data, 50) == 5
        assert percentile(data, 100) == 10
        assert percentile(data, 10) == 1

    def test_empty(self):
        assert percentile([], 99) == 0.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
