"""Online diagnosis sessions through the gray-failure scenario.

The contract under a fault that races the query window: the verdict
**degrades, it does not error** — the dead host is timed out, named in
``missing_hosts``, and the fault plan reports the race as
``active-during-diagnosis``.
"""

import pytest

from repro.analyzer.session import VERDICT_STATES
from repro.scenarios.gray_failure import GrayFailureScenario

# h4_0's agent dies at 100 ms while the CBR sources keep transmitting:
# the same race the README example and the rpc-latency sweep exercise
CRASH_KNOBS = dict(n_flows=2, overrun_ms=250.0,
                   crash_host="h4_0", crash_at=0.1)


@pytest.fixture(scope="module")
def raced():
    """2 ms of extra RPC latency: the crash lands mid-query."""
    return GrayFailureScenario(rpc_latency_ms=2.0, **CRASH_KNOBS).execute()


class TestCompleteVerdicts:
    def test_default_online_run_is_complete(self):
        result = GrayFailureScenario(n_flows=2).execute()
        assert result.verdicts
        assert all(v.status == "complete" for v in result.verdicts)
        assert all(v.missing_hosts == [] for v in result.verdicts)

    def test_latency_and_freshness_surface(self):
        result = GrayFailureScenario(n_flows=2,
                                     overrun_ms=250.0).execute()
        assert result.diagnosis_latency_sim > 0
        assert result.freshness > 0
        summary = "\n".join(result.summary_lines())
        assert "diagnosis latency (sim)" in summary
        assert "freshness" in summary

    def test_offline_mode_costs_no_simulated_time(self):
        result = GrayFailureScenario(n_flows=2, online=0).execute()
        assert result.diagnosis_latency_sim == 0.0
        assert result.freshness == 0
        assert any(v.suspect == "S3" for v in result.verdicts)


class TestCrashRacesTheWindow:
    def test_verdict_degrades_and_names_the_gap(self, raced):
        assert raced.verdicts
        assert all(v.status == "degraded" for v in raced.verdicts)
        assert all(v.missing_hosts == ["h4_0"] for v in raced.verdicts)

    def test_degraded_still_localizes(self, raced):
        assert any(v.suspect == "S3" for v in raced.verdicts)

    def test_raced_fault_reported_active_during_diagnosis(self, raced):
        plan = raced.measurements["fault_plan"]
        assert any("active-during-diagnosis" in line for line in plan)

    def test_fast_diagnosis_beats_the_crash(self):
        result = GrayFailureScenario(rpc_latency_ms=0.0,
                                     **CRASH_KNOBS).execute()
        assert all(v.status == "complete" for v in result.verdicts)
        plan = result.measurements["fault_plan"]
        assert any("pending" in line for line in plan)


class TestStaleBudget:
    def test_slow_verdict_stamped_stale(self):
        result = GrayFailureScenario(n_flows=2, rpc_latency_ms=2.0,
                                     stale_after_ms=1.0).execute()
        assert result.verdicts
        assert all(v.status == "stale" for v in result.verdicts)

    def test_generous_budget_stays_complete(self):
        result = GrayFailureScenario(n_flows=2, rpc_latency_ms=2.0,
                                     stale_after_ms=10_000.0).execute()
        assert all(v.status == "complete" for v in result.verdicts)

    def test_missing_evidence_outranks_staleness(self):
        result = GrayFailureScenario(rpc_latency_ms=2.0,
                                     stale_after_ms=1.0,
                                     **CRASH_KNOBS).execute()
        assert result.verdicts[-1].status == "degraded"
        assert all(v.status in VERDICT_STATES for v in result.verdicts)
