"""Link flap churn: a trunk link oscillates down/up, driving reroutes.

A flapping transceiver takes one of the two S1→S2 trunks down every few
milliseconds and brings it back shortly after.  Each transition strands
in-flight traffic for the control-plane reconvergence window (packets
sent into the dead link are lost), then reroutes the link's flows onto
the surviving spine — and back again on recovery.  TCP flows pinned to
the flapping side see repeated losses and retransmission timeouts.

Host telemetry exposes the churn without touching the switches: flows
hashed to the flapping spine accumulate epoch ranges at *both* spines
(they were rerouted at least once), while the healthy spine keeps its
stable hash-assigned users.  The egress with zero stable users is the
flapping one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_link_flap
from ..core.epoch import EpochRange
from ..deployment import SwitchPointerDeployment
from ..simnet.device import _flow_hash
from ..simnet.packet import PRIO_LOW, PROTO_TCP, PROTO_UDP, FlowKey
from ..simnet.topology import LinkFlapper, Network
from ..simnet.traffic import TcpTimedFlow, UdpCbrSource, UdpSink
from ..sweep import SweepSpec, register_sweep
from .base import Knob, Scenario, ScenarioSpec, register
from .common import GBPS, build_diamond


@dataclass
class LinkFlapResult:
    """Output of one link-flap run."""

    deployment: SwitchPointerDeployment
    network: Network
    flapped_link: tuple[str, str]
    flaps: int
    down_drops: int
    tcp_timeouts: int
    #: flows hashed to the flapping spine (ground truth: these reroute)
    flapping_side_flows: list[FlowKey] = field(default_factory=list)
    stable_side_flows: list[FlowKey] = field(default_factory=list)


@register
class LinkFlapScenario(Scenario):
    """Periodic down/up churn on the S1—SPA trunk of a diamond.

    ``n_flows`` long-lived CBR flows cross the diamond, half hashed to
    each spine (source ports are chosen to pin the split).  A
    :class:`~repro.simnet.topology.LinkFlapper` cycles the S1—SPA link;
    routing reconverges ``reconverge_delay`` seconds after each
    transition, so every flap blackholes the SPA-side flows briefly
    before rerouting them onto SPB.
    """

    spec = ScenarioSpec(
        name="link-flap",
        summary="a flapping trunk periodically reroutes its flows and "
                "strands packets in the blackhole window",
        paper_ref="§2.4 extended use case; flap-induced reroute churn "
                  "and cascaded retransmits",
        expected_diagnosis="link-flap (suspect: S1-SPA)",
        knobs={
            "n_flows": Knob(8, "long-lived UDP flows (half per spine)"),
            "duration": Knob(0.060, "total run time (s)"),
            "first_down": Knob(0.012, "first down transition (s)"),
            "down_for": Knob(0.006, "down dwell per flap (s)"),
            "up_for": Knob(0.010, "up dwell per flap (s)"),
            "reconverge_delay": Knob(0.002, "routing convergence lag "
                                            "after each transition (s)"),
            "rate_mbps": Knob(20.0, "per-UDP-flow CBR rate (Mbit/s)"),
            "with_tcp": Knob(True, "add an SPA-pinned TCP flow to "
                                   "observe retransmit cascades"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
        },
        smoke_knobs={"n_flows": 4, "duration": 0.045},
    )

    def build(self) -> None:
        p = self.p
        n = p["n_flows"]
        net = build_diamond(n + 1, trunk_bps=10 * GBPS,
                            host_bps=GBPS)   # pair n: the TCP flow
        deploy = SwitchPointerDeployment(net, alpha_ms=p["alpha_ms"],
                                         k=p["k"])
        self.network, self.deployment = net, deploy

        # ECMP candidate order at S1 follows link creation order:
        # SPA first, then SPB — index 0 is the flapping side.
        self.flapping_side: list[FlowKey] = []
        self.stable_side: list[FlowKey] = []
        rate = p["rate_mbps"] * 1e6
        for i in range(n):
            side = i % 2                 # alternate SPA(0) / SPB(1)
            sport = self._pin_sport(f"tx{i}", f"rx{i}", PROTO_UDP, side)
            UdpSink(net.hosts[f"rx{i}"], sport)
            src = UdpCbrSource(net.sim, net.hosts[f"tx{i}"], f"rx{i}",
                               sport=sport, dport=sport, rate_bps=rate,
                               packet_size=1000, priority=PRIO_LOW,
                               start=0.001,
                               duration=p["duration"] - 0.005)
            (self.flapping_side if side == 0
             else self.stable_side).append(src.flow)

        self.tcp_app = None
        if p["with_tcp"]:
            # pin the TCP flow to the flapping spine: its losses during
            # each blackhole window drive the retransmit cascade
            sport = self._pin_sport(f"tx{n}", f"rx{n}", PROTO_TCP, 0)
            self.tcp_app = TcpTimedFlow(
                net.sim, net.hosts[f"tx{n}"], net.hosts[f"rx{n}"],
                duration=p["duration"] - 0.010, sport=sport, dport=200,
                priority=PRIO_LOW)
            self.flapping_side.append(self.tcp_app.sender.flow)

        self.flapper = LinkFlapper(
            net, "S1", "SPA", down_for=p["down_for"], up_for=p["up_for"],
            start_delay=p["first_down"],
            reconverge_delay=p["reconverge_delay"])

    def _pin_sport(self, src: str, dst: str, proto: int,
                   side: int, dport: int = 200) -> int:
        """Find a source port whose 5-tuple hashes to ``side``."""
        sport = 7000
        while True:
            key = FlowKey(src, dst, sport, sport if proto == PROTO_UDP
                          else dport, proto)
            if _flow_hash(key) % 2 == side:
                return sport
            sport += 1

    def run(self) -> None:
        self.network.run(until=self.p["duration"])
        self.flapper.stop()

    def collect(self) -> dict:
        net = self.network
        link = net.link_between("S1", "SPA")
        timeouts = (self.tcp_app.sender.timeouts
                    if self.tcp_app is not None else 0)
        self.payload = LinkFlapResult(
            deployment=self.deployment, network=net,
            flapped_link=("S1", "SPA"), flaps=self.flapper.flaps,
            down_drops=link.down_drops, tcp_timeouts=timeouts,
            flapping_side_flows=list(self.flapping_side),
            stable_side_flows=list(self.stable_side))
        return {
            "flaps": self.payload.flaps,
            "down_drops": self.payload.down_drops,
            "tcp_timeouts": timeouts,
            "flow_count": (len(self.flapping_side)
                           + len(self.stable_side)),
        }

    def diagnose(self) -> list[Verdict]:
        last_epoch = self.deployment.datapaths["S1"].clock.epoch_of(
            self.network.sim.now)
        return [diagnose_link_flap(self.deployment.analyzer, "S1",
                                   epochs=EpochRange(0, last_epoch))]


register_sweep(SweepSpec(
    scenario="link-flap",
    summary="flapping-trunk localization as the crossing flow "
            "population scales",
    expect_problem="link-flap",
    axes={
        "flows": "n_flows",
        "alpha_ms": "alpha_ms",
        "down_for": "down_for",
    },
    default_grid={"flows": (8, 16, 32)},
    nightly_grid={"flows": (8, 16)},
))
