"""Fault registry contract: contents, validation, and param handling."""

import pytest

from repro.faults import (FAULTS, Fault, FaultError, FaultParam,
                          FaultRegistry, FaultSpec)


class TestRegistryContents:
    def test_at_least_six_faults_registered(self):
        # the CLI `faults list` acceptance bar rides on this
        assert len(FAULTS) >= 6

    def test_expected_faults_present(self):
        for name in ("link-down", "link-flap", "silent-drop",
                     "ecmp-polarization", "clock-skew",
                     "partial-deployment", "agent-crash"):
            assert name in FAULTS

    def test_names_sorted_and_specs_match(self):
        names = FAULTS.names()
        assert names == sorted(names)
        assert [s.name for s in FAULTS.specs()] == names

    def test_unknown_fault_rejected_with_known_list(self):
        with pytest.raises(FaultError, match="known:.*silent-drop"):
            FAULTS.get("bit-rot")

    def test_create_instantiates(self):
        fault = FAULTS.create("silent-drop", switch="S1")
        assert fault.spec.name == "silent-drop"
        assert fault.p["switch"] == "S1"


class TestRegistryValidation:
    def test_duplicate_name_rejected(self):
        reg = FaultRegistry()

        class F(Fault):
            spec = FaultSpec(name="f", summary="s", degrades="d",
                             diagnosed_by="n")

            def inject(self, ctx):
                pass

            def heal(self, ctx):
                pass

        reg.register(F)
        with pytest.raises(FaultError, match="duplicate"):
            reg.register(F)

    def test_missing_spec_rejected(self):
        reg = FaultRegistry()

        class Bare(Fault):
            def inject(self, ctx):
                pass

            def heal(self, ctx):
                pass

        with pytest.raises(FaultError, match="FaultSpec"):
            reg.register(Bare)

    def test_shared_param_shadowing_rejected(self):
        reg = FaultRegistry()

        class Shadow(Fault):
            spec = FaultSpec(name="shadow", summary="s", degrades="d",
                             diagnosed_by="n",
                             params={"start": FaultParam(1.0, "clash")})

            def inject(self, ctx):
                pass

            def heal(self, ctx):
                pass

        with pytest.raises(FaultError, match="redeclares"):
            reg.register(Shadow)


class TestParamHandling:
    def test_unknown_param_rejected(self):
        with pytest.raises(FaultError, match="unknown param"):
            FAULTS.create("silent-drop", switch="S1", wobble=3)

    def test_defaults_and_overrides_resolve(self):
        fault = FAULTS.create("link-flap", a="S1", b="SPA",
                              start=0.01, stop=0.05)
        assert fault.p["down_for"] == 0.006        # default
        assert fault.p["start"] == 0.01
        assert fault.p["stop"] == 0.05

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError, match="start"):
            FAULTS.create("silent-drop", switch="S1", start=-0.1)

    def test_heal_before_inject_rejected_at_construction(self):
        with pytest.raises(FaultError, match="cannot heal before"):
            FAULTS.create("silent-drop", switch="S1",
                          start=0.02, stop=0.01)

    def test_heal_at_inject_instant_rejected(self):
        with pytest.raises(FaultError, match="cannot heal before"):
            FAULTS.create("link-down", a="S1", b="S2",
                          start=0.02, stop=0.02)

    def test_describe_names_fault_params_and_state(self):
        fault = FAULTS.create("silent-drop", switch="S3", start=0.02)
        text = fault.describe()
        assert "silent-drop" in text
        assert "switch=S3" in text
        assert "[pending]" in text
