"""Property-based tests for workload planning (docs/WORKLOADS.md).

Core claim: the batched planner path — endpoint indices and flow sizes
drawn in C-level ``random.choices`` batches — produces the *same flow
population* (sources, destinations, sizes, start times, ports) as the
naive per-flow reference path for equal seeds, across endpoint mixes,
population sizes, endpoint subsets, and batch boundaries.  This is the
contract that lets scenarios use the fast path while tests and docs
reason about the simple one."""

from hypothesis import given, settings, strategies as st

from repro.simnet.workload import (MIX_UNIFORM, MIX_ZIPF, FlowPlanner,
                                   WorkloadSpec)

HOSTS = [f"h{i}" for i in range(12)]

fixed_population_specs = st.builds(
    WorkloadSpec,
    n_flows=st.integers(min_value=0, max_value=500),
    spread_s=st.sampled_from([0.0, 0.004, 0.05]),
    mix=st.sampled_from([MIX_UNIFORM, MIX_ZIPF]),
    zipf_s=st.floats(min_value=0.3, max_value=2.5,
                     allow_nan=False, allow_infinity=False),
    mean_flow_bytes=st.integers(min_value=2_000, max_value=200_000),
    min_flow_bytes=st.integers(min_value=200, max_value=2_000),
    pareto_shape=st.floats(min_value=1.05, max_value=3.0,
                           allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2 ** 31),
)

poisson_specs = st.builds(
    WorkloadSpec,
    arrival_rate_per_s=st.floats(min_value=200.0, max_value=20_000.0,
                                 allow_nan=False, allow_infinity=False),
    duration_s=st.sampled_from([0.005, 0.02]),
    mix=st.sampled_from([MIX_UNIFORM, MIX_ZIPF]),
    seed=st.integers(min_value=0, max_value=2 ** 31),
)

endpoint_subsets = st.lists(st.sampled_from(HOSTS), unique=True,
                            min_size=2, max_size=len(HOSTS))


def assert_paths_identical(planner: FlowPlanner, t0: float = 0.0):
    batched = planner.plan(t0)
    naive = planner.plan_naive(t0)
    # full structural equality: same flows (src, dst, ports), same
    # sizes, same start times, same order
    assert batched == naive
    assert all(p.flow.src != p.flow.dst for p in batched)
    return batched


class TestBatchedEqualsNaive:
    @given(spec=fixed_population_specs)
    @settings(max_examples=60, deadline=None)
    def test_fixed_population_identical(self, spec):
        assert_paths_identical(FlowPlanner(spec, HOSTS, HOSTS))

    @given(spec=poisson_specs)
    @settings(max_examples=40, deadline=None)
    def test_poisson_arrivals_identical(self, spec):
        assert_paths_identical(FlowPlanner(spec, HOSTS, HOSTS),
                               t0=0.003)

    @given(spec=fixed_population_specs, senders=endpoint_subsets,
           receivers=endpoint_subsets)
    @settings(max_examples=40, deadline=None)
    def test_endpoint_subsets_identical(self, spec, senders, receivers):
        assert_paths_identical(FlowPlanner(spec, senders, receivers))

    @given(spec=fixed_population_specs,
           batch=st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_any_batch_boundary_identical(self, spec, batch):
        """The plan must not depend on where batches split."""
        small = FlowPlanner(spec, HOSTS, HOSTS)
        small.BATCH = batch  # instance attribute shadows the class one
        planner = FlowPlanner(spec, HOSTS, HOSTS)
        assert small.plan() == planner.plan() == planner.plan_naive()

    @given(spec=fixed_population_specs)
    @settings(max_examples=30, deadline=None)
    def test_plans_stable_across_planner_instances(self, spec):
        a = FlowPlanner(spec, HOSTS, HOSTS).plan()
        b = FlowPlanner(spec, HOSTS, HOSTS).plan()
        assert a == b

    @given(spec=fixed_population_specs)
    @settings(max_examples=30, deadline=None)
    def test_sizes_respect_bounds(self, spec):
        for p in FlowPlanner(spec, HOSTS, HOSTS).plan():
            assert (spec.min_flow_bytes <= p.size_bytes
                    <= spec.max_flow_bytes)
