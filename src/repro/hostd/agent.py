"""Host agent: the end-host daemon (§4.2).

One :class:`HostAgent` per server wires together everything the paper's
flask-based agent does:

* a sniffer on the host datapath feeding the telemetry decoder,
* the flow-record store (+ optional disk spill),
* the query engine the analyzer calls into,
* trigger registration (throughput drop, TCP timeout) with alerts
  routed to a sink (normally the analyzer's ingest method).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..core.epoch import EpochClock, EpochRangeEstimator
from ..simnet.engine import Simulator
from ..simnet.host import Host
from ..simnet.packet import FlowKey
from ..simnet.tcp import TcpSender
from ..switchd.cherrypick import CherryPickPlanner
from .backends import make_store
from .decoder import TelemetryDecoder
from .query import QueryEngine
from .triggers import AlertSink, TcpTimeoutTrigger, ThroughputDropTrigger


class HostAgent:
    """The SwitchPointer daemon running on one end-host.

    Parameters
    ----------
    max_records:
        Memory bound on the record table (None = unbounded).
    record_shards:
        >1 swaps the flat :class:`FlowRecordStore` for a
        :class:`~repro.hostd.sharded.ShardedRecordStore` with that many
        shards (query-equivalent; sublinear maintenance at sweep scale).
    ingest_batch:
        >1 buffers that many sniffed packets and decodes them in one
        go with the store's eviction check deferred to the batch end.
        Queries are unaffected: the query engine flushes the buffer
        before serving (``before_query``), so results always reflect
        every packet sniffed so far.
    record_backend:
        Which record-store backend to build
        (:mod:`repro.hostd.backends`): ``"flat"``, ``"sharded"``,
        ``"columnar"``, or ``"auto"`` (the default — sharded when
        ``record_shards > 1``, flat otherwise, unless a process-wide
        override is active).  All backends are query-equivalent.
    """

    def __init__(self, host: Host, *, clock: EpochClock,
                 planner: CherryPickPlanner,
                 estimator: EpochRangeEstimator,
                 spill_path: Optional[Path] = None,
                 max_records: Optional[int] = None,
                 record_shards: int = 1,
                 ingest_batch: int = 1,
                 record_backend: str = "auto"):
        if ingest_batch < 1:
            raise ValueError("ingest_batch must be >= 1")
        self.host = host
        self.clock = clock
        self.ingest_batch = ingest_batch
        self._pending: list[tuple[Host, object, float]] = []
        self.store = make_store(
            record_backend, host.name, spill_path=spill_path,
            max_records=max_records, record_shards=record_shards)
        # every read-side consumer — query engine, triggers, analyzer
        # apps reading agent.store directly — sees a flushed table
        self.store.before_read = self.flush_ingest
        self.decoder = TelemetryDecoder(self.store, clock, planner,
                                        estimator)
        self.query = QueryEngine(self.store,
                                 before_query=self.flush_ingest)
        self.triggers: list[ThroughputDropTrigger] = []
        self.timeout_triggers: list[TcpTimeoutTrigger] = []
        #: every sniffer callback this agent registered, so a crash can
        #: detach (and a restart re-attach) exactly its own hooks
        self._sniffers: list = []
        self.alive = True
        self._add_sniffer(self._buffer_packet if ingest_batch > 1
                          else self.decoder.on_packet)

    def _add_sniffer(self, cb) -> None:
        self._sniffers.append(cb)
        if self.alive:
            self.host.sniffers.append(cb)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self) -> Simulator:
        return self.host.sim

    # -- batched ingestion ---------------------------------------------------

    def _buffer_packet(self, host: Host, pkt, now: float) -> None:
        self._pending.append((host, pkt, now))
        if len(self._pending) >= self.ingest_batch:
            self.flush_ingest()

    def flush_ingest(self) -> int:
        """Decode every buffered packet (one deferred eviction check).

        A store exposing ``apply_groups`` (the columnar backend) gets
        the whole batch through the decoder's fused
        :meth:`~TelemetryDecoder.flush_batch` — one loop decodes and
        groups by flow, then the store scatters the groups with batched
        index maintenance, equivalent to the per-packet loop by the
        store's batch contract.  Other stores take the per-packet loop
        under ``begin_batch``/``end_batch``.
        """
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        if hasattr(self.store, "apply_groups"):
            self.decoder.flush_batch(batch)
            return len(batch)
        self.store.begin_batch()
        try:
            for host, pkt, now in batch:
                self.decoder.on_packet(host, pkt, now)
        finally:
            self.store.end_batch()
        return len(batch)

    # -- trigger management -------------------------------------------------

    def watch_flow(self, flow: FlowKey, sink: AlertSink, *,
                   window: float = 0.001, drop_threshold: float = 0.5,
                   floor_gbps: float = 0.05) -> ThroughputDropTrigger:
        """Install the §5.1 throughput-drop trigger for one flow."""
        trig = ThroughputDropTrigger(
            self.sim, flow, self.host.name, self.store, sink,
            window=window, drop_threshold=drop_threshold,
            floor_gbps=floor_gbps, clock=self.clock,
            slack_epochs=self.decoder.estimator.span_epochs(1))
        self.triggers.append(trig)
        # feed the trigger from the same sniffer stream the decoder uses
        self._add_sniffer(
            lambda _host, pkt, now: trig.on_packet(pkt, now))
        return trig

    def watch_tcp_sender(self, sender: TcpSender,
                         sink: AlertSink) -> TcpTimeoutTrigger:
        """Install a timeout trigger for a locally originated TCP flow."""
        trig = TcpTimeoutTrigger(self.sim, sender, self.host.name, sink,
                                 store=self.store)
        self.timeout_triggers.append(trig)
        return trig

    def stop_triggers(self) -> None:
        for trig in self.triggers:
            trig.stop()
        for trig in self.timeout_triggers:
            trig.stop()

    # -- crash / restart (the agent-crash fault) -----------------------------

    def crash(self) -> int:
        """Kill the daemon: stop sniffing, lose all in-memory telemetry.

        Everything a real agent process holds in RAM dies with it: the
        record table, the batched-ingest buffer.  The disk spill file
        (if any) survives, as it would.  Returns the number of records
        lost.  Idempotent — a crash of a dead agent loses nothing.
        """
        if not self.alive:
            return 0
        self.alive = False
        for cb in self._sniffers:
            self.host.sniffers.remove(cb)
        self._pending.clear()
        return self.store.drop_all()

    def restart(self) -> None:
        """Supervisor restart: resume sniffing with an empty table."""
        if self.alive:
            return
        self.alive = True
        self.host.sniffers.extend(self._sniffers)

    # -- storage --------------------------------------------------------------

    def flush_records(self) -> int:
        """Spill in-memory records to local storage (MongoDB stand-in)."""
        self.flush_ingest()
        return self.store.flush_to_disk()
