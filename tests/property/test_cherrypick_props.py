"""Property tests: CherryPick reconstruction is exact on clos fabrics.

For any host pair and any packet actually forwarded, the trajectory
reconstructed from (src, dst, picked link) must equal the switches the
packet truly traversed — the §4.1.3 correctness claim.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.packet import PROTO_UDP, make_udp
from repro.simnet.topology import build_fat_tree, build_leaf_spine
from repro.switchd.cherrypick import CherryPickPlanner


@pytest.fixture(scope="module")
def fat_tree():
    net = build_fat_tree(4)
    return net, CherryPickPlanner(net), sorted(net.hosts)


@pytest.fixture(scope="module")
def leaf_spine():
    net = build_leaf_spine(4, 3, 2)
    return net, CherryPickPlanner(net), sorted(net.hosts)


def send_and_reconstruct(net, planner, src, dst, sport):
    got = []
    def handler(p, t):
        got.append(p)
    net.hosts[dst].bind(PROTO_UDP, 20_000 + sport, handler)
    try:
        net.hosts[src].send(make_udp(src, dst, sport,
                                     20_000 + sport, 400))
        net.run()
    finally:
        net.hosts[dst].unbind(PROTO_UDP, 20_000 + sport)
    assert got, "packet must arrive"
    true_hops = got[0].hops
    nodes = [src] + true_hops + [dst]
    pinning = None
    for a, b in zip(nodes, nodes[1:]):
        link = net.link_between(a, b)
        if planner.pins_path(src, dst, link):
            pinning = link
            break
    assert pinning is not None, "some on-path link must pin on clos"
    return true_hops, planner.switch_path(src, dst, pinning.vlan_id)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_fat_tree_reconstruction_exact(fat_tree, data):
    net, planner, hosts = fat_tree
    src = data.draw(st.sampled_from(hosts), label="src")
    dst = data.draw(st.sampled_from([h for h in hosts if h != src]),
                    label="dst")
    sport = data.draw(st.integers(min_value=1, max_value=5000))
    true_hops, reconstructed = send_and_reconstruct(net, planner, src,
                                                    dst, sport)
    assert reconstructed == true_hops


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_leaf_spine_reconstruction_exact(leaf_spine, data):
    net, planner, hosts = leaf_spine
    src = data.draw(st.sampled_from(hosts), label="src")
    dst = data.draw(st.sampled_from([h for h in hosts if h != src]),
                    label="dst")
    sport = data.draw(st.integers(min_value=1, max_value=5000))
    true_hops, reconstructed = send_and_reconstruct(net, planner, src,
                                                    dst, sport)
    assert reconstructed == true_hops
