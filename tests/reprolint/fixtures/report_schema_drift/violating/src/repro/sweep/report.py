"""Fixture: writer and validator schema have drifted apart."""

from dataclasses import dataclass
from typing import Any

# validates 'seed' (which to_json never writes) and misses 'extra'
_POINT_FIELDS = {"index": int, "seed": int}
_TOP_FIELDS = {"schema": int, "points": list}


@dataclass
class PointResult:
    index: int
    extra: str

    def to_json(self) -> dict[str, Any]:
        return {"index": self.index, "extra": self.extra}


@dataclass
class SweepReport:
    schema: int
    points: list

    def to_json(self) -> dict[str, Any]:
        return {"schema": self.schema, "points": self.points}
