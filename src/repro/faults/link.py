"""Link faults: one-shot outage and periodic flap.

Extracted from the link-flap scenario's inline wiring: both faults
model the gap between a physical transition and control-plane
reconvergence (``reconverge_delay``) — packets already committed to a
dead link during that window are lost, which is what drives the
retransmit cascades the flap scenario studies.
"""

from __future__ import annotations

from typing import Any, Optional

from ..simnet.topology import LinkFlapper
from .base import Fault, FaultContext, FaultError, FaultParam, FaultSpec, register_fault


def _require_link(ctx: FaultContext, fault: Fault, a: str, b: str) -> None:
    if not a or not b:
        raise FaultError(f"fault {fault.spec.name!r} needs both link endpoints a=, b=")
    ctx.network.link_between(a, b)  # raises TopologyError if absent


@register_fault
class LinkDownFault(Fault):
    """Take one link down at ``start``; bring it back at ``stop`` (if set).

    The transition is physical-first: forwarding state keeps pointing at
    the dead link for ``reconverge_delay`` seconds (the blackhole
    window), then routes recompute around it.  Telemetry signature:
    every flow hashed to the dead egress detours — its host records
    accumulate epoch ranges at *both* egress switches, which is what
    :func:`repro.analyzer.apps.diagnose_link_flap` keys on.
    """

    spec = FaultSpec(
        name="link-down",
        summary="one-shot link outage with delayed routing reconvergence",
        degrades="connectivity: strands in-flight packets until routes "
        "reconverge, then forces a reroute (and a reroute back on repair)",
        diagnosed_by="diagnose_link_flap (the dead egress is the churned one)",
        params={
            "a": FaultParam("", "one link endpoint (node name)"),
            "b": FaultParam("", "the other link endpoint"),
            "reconverge_delay": FaultParam(
                0.002, "control-plane convergence lag after each transition (s)"
            ),
        },
    )

    def schedule(self, ctx: FaultContext) -> None:
        _require_link(ctx, self, self.p["a"], self.p["b"])
        super().schedule(ctx)

    def _transition(self, ctx: FaultContext, *, up: bool) -> None:
        net = ctx.network
        net.set_link_state(self.p["a"], self.p["b"], up, reconverge=False)
        delay = self.p["reconverge_delay"]
        if delay > 0:
            net.sim.schedule(delay, net.compute_routes)
        else:
            net.compute_routes()

    def inject(self, ctx: FaultContext) -> None:
        self._transition(ctx, up=False)

    def heal(self, ctx: FaultContext) -> None:
        self._transition(ctx, up=True)


@register_fault
class LinkFlapFault(Fault):
    """Oscillate one link down/up from ``start`` until ``stop``.

    Wraps :class:`repro.simnet.topology.LinkFlapper` (the scenario
    code's original injector): the first down transition fires at
    ``start``, each dwell is ``down_for``/``up_for``, and healing stops
    the flapper and restores the link if it died mid-outage.
    """

    spec = FaultSpec(
        name="link-flap",
        summary="periodic down/up churn on one link (transceiver flap)",
        degrades="connectivity, repeatedly: every cycle strands packets "
        "for the reconvergence window and reroutes the link's flows",
        diagnosed_by="diagnose_link_flap",
        params={
            "a": FaultParam("", "one link endpoint (node name)"),
            "b": FaultParam("", "the other link endpoint"),
            "down_for": FaultParam(0.006, "down dwell per flap (s)"),
            "up_for": FaultParam(0.010, "up dwell per flap (s)"),
            "reconverge_delay": FaultParam(
                0.002, "control-plane convergence lag after each transition (s)"
            ),
        },
    )

    def __init__(self, **params: Any):
        super().__init__(**params)
        self.flapper: Optional[LinkFlapper] = None

    def schedule(self, ctx: FaultContext) -> None:
        _require_link(ctx, self, self.p["a"], self.p["b"])
        super().schedule(ctx)

    def inject(self, ctx: FaultContext) -> None:
        # the flapper owns the periodic process; its first down
        # transition is immediate (the plan already delayed us to start)
        self.flapper = LinkFlapper(
            ctx.network,
            self.p["a"],
            self.p["b"],
            down_for=self.p["down_for"],
            up_for=self.p["up_for"],
            start_delay=0.0,
            reconverge_delay=self.p["reconverge_delay"],
        )

    def heal(self, ctx: FaultContext) -> None:
        assert self.flapper is not None
        self.flapper.stop()
        link = self.flapper.link
        if not link.up:
            ctx.network.set_link_state(self.p["a"], self.p["b"], True)

    def finalize(self, ctx: FaultContext) -> None:
        # stop the periodic process; the link stays in whatever state
        # the last transition left it (diagnosis sees the fault as-is)
        if self.flapper is not None:
            self.flapper.stop()

    @property
    def flaps(self) -> int:
        """Completed down/up cycles so far (0 before injection)."""
        return self.flapper.flaps if self.flapper is not None else 0
