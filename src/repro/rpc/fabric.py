"""Simulated control-plane RPC fabric with a calibrated latency model.

The paper's control plane is flask-over-HTTP; its measured latencies
(Figs 7, 8, 12) are dominated by **on-demand connection initiation**:
"the analyzer creates one thread per server to initiate connection when
a query should be executed.  This on-demand thread creation delays the
execution of query at servers" (§6.2).  That serialized per-server setup
is why both PathDump's and SwitchPointer's response times grow linearly
with the number of servers contacted — and why SwitchPointer wins by
contacting only the *relevant* servers.

:class:`LatencyModel` carries the constants, calibrated to the paper's
reported numbers:

* problem detection ≲ 1 ms (the 1 ms trigger window),
* alert + acknowledgment: 2–3 ms,
* pointer retrieval: 7–8 ms per switch,
* per-server connection initiation: ~3.3 ms (0.32 s / 96 servers),
* query execution & response: ~1 ms each plus per-record scan time.

:class:`RpcFabric` composes them the way the implementation would:
connection setups serialize on the analyzer; request/execute/response
run in parallel across servers once their connections exist.  A
``pooled`` flag models the §6.2 thread-pool optimization.

**Simulated time.**  By default the fabric is pure accounting: it
computes latencies but the simulator clock never moves (the historical
post-mortem mode, where diagnosis happens outside simulated time).
:meth:`RpcFabric.bind` attaches a simulator; from then on every RPC
*charges its latency in simulated time* — the clock advances through
each phase, pending events (ingestion, epoch rotation, scheduled
faults) fire while queries are in flight, and diagnosis genuinely
races the network.  An optional per-server hop counter adds a
topology-path-derived wire cost (``per_hop_s`` per hop) on top of the
flat constants.

**Partial answers.**  A bound fabric may also be given a
``responsive`` predicate per fan-out: servers that fail it (crashed
agent, downed access link) never answer.  Each such server burns
``timeout_s`` per attempt across ``1 + retries`` attempts with
exponential backoff between them — concurrent with the responsive
servers' execution — and is simply *absent* from the result dict, so
callers get a partial answer (and can name the evidence gap) instead
of a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..hostd.query import QueryResult
from ..simnet.engine import Simulator


@dataclass(frozen=True)
class LatencyModel:
    """Constants of the control-plane cost model (seconds)."""

    connection_init_s: float = 3.3e-3   # per server, serialized (§6.2)
    pooled_dispatch_s: float = 0.15e-3  # per server with a thread pool
    alert_rtt_s: float = 2.5e-3         # host alert -> analyzer ack (§5.1)
    pointer_pull_s: float = 7.5e-3      # per switch pointer retrieval (§5.1)
    request_s: float = 0.8e-3           # query request wire time
    exec_base_s: float = 0.9e-3         # query execution, fixed part
    per_record_s: float = 4e-6          # query execution, per record scanned
    response_s: float = 0.8e-3          # response wire time
    per_hop_s: float = 5e-5             # wire cost per topology hop traversed
    timeout_s: float = 20e-3            # per-attempt wait on a silent server
    retries: int = 2                    # re-attempts after the first timeout
    backoff_s: float = 5e-3             # backoff before the first retry
    backoff_factor: float = 2.0         # exponential backoff growth

    def with_extra(self, extra_s: float) -> "LatencyModel":
        """A copy with ``extra_s`` added to every per-RPC wire constant.

        This is what the ``rpc_latency_ms`` scenario knob (and the
        ``rpc-latency`` sweep axis behind it) scales: each pointer
        pull, each fan-out request, and the alert RTT get the same
        additive slowdown, modelling a congested or distant control
        network without touching the per-record execution costs.
        """
        if extra_s < 0:
            raise ValueError("extra RPC latency cannot be negative")
        if extra_s == 0:
            return self
        return replace(
            self,
            alert_rtt_s=self.alert_rtt_s + extra_s,
            pointer_pull_s=self.pointer_pull_s + extra_s,
            request_s=self.request_s + extra_s,
        )


@dataclass
class Breakdown:
    """Accumulated latency by phase (the Fig 7 / Fig 12 bar segments)."""

    parts: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.parts[phase] = self.parts.get(phase, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.parts.values())

    def merged(self, other: "Breakdown") -> "Breakdown":
        out = Breakdown(dict(self.parts))
        for phase, s in other.parts.items():
            out.add(phase, s)
        return out


class RpcFabric:
    """Latency-accounted RPC between analyzer, switches, and hosts.

    ``concurrency`` models batched connection initiation: the analyzer
    opens up to that many connections at once, so fan-out setup costs
    ``ceil(n / concurrency)`` serialized rounds instead of ``n``.  The
    default of 1 reproduces the paper's §6.2 one-thread-per-server
    on-demand behaviour (and its linear response-time growth) exactly;
    ``pooled`` remains the stronger thread-pool optimization with a
    flat, cheap per-server dispatch.
    """

    def __init__(self, model: Optional[LatencyModel] = None, *,
                 pooled: bool = False, concurrency: int = 1):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.model = model if model is not None else LatencyModel()
        self.pooled = pooled
        self.concurrency = concurrency
        self.calls = 0
        #: fan-out targets that never answered (cumulative)
        self.timeouts = 0
        #: attempts burned on unresponsive servers (cumulative)
        self.attempts_wasted = 0
        self._sim: Optional[Simulator] = None
        self._hops_to: Optional[Callable[[str], int]] = None

    # -- simulated-time binding -----------------------------------------------

    def bind(self, sim: Optional[Simulator], *,
             hops_to: Optional[Callable[[str], int]] = None) -> None:
        """Charge all subsequent RPC latency in simulated time.

        ``hops_to`` maps a server name to its topology hop count from
        the analyzer site; each RPC to that server pays
        ``hops * per_hop_s`` of extra wire time.  ``bind(None)``
        returns the fabric to pure accounting.
        """
        self._sim = sim
        self._hops_to = hops_to if sim is not None else None

    @property
    def sim_bound(self) -> bool:
        return self._sim is not None

    def _advance(self, seconds: float) -> None:
        """Consume ``seconds`` of simulated time (pending events fire)."""
        if self._sim is not None and seconds > 0:
            self._sim.run(until=self._sim.now + seconds)

    def _hop_cost(self, server: str) -> float:
        if self._hops_to is None:
            return 0.0
        return self._hops_to(server) * self.model.per_hop_s

    def timeout_retry_cost(self) -> float:
        """Time one unresponsive server burns before being given up on.

        ``1 + retries`` attempts of ``timeout_s`` each, separated by
        exponentially growing backoff — the bound that keeps a retry
        storm finite: however many servers are down, each costs exactly
        this much (and they all wait concurrently).
        """
        m = self.model
        total = (1 + m.retries) * m.timeout_s
        total += sum(m.backoff_s * (m.backoff_factor ** i)
                     for i in range(m.retries))
        return total

    # -- elementary costs -----------------------------------------------------

    def alert_cost(self) -> float:
        """Host → analyzer alert plus acknowledgment."""
        self.calls += 1
        cost = self.model.alert_rtt_s
        self._advance(cost)
        return cost

    def pointer_pull_cost(self, n_switches: int) -> float:
        """Retrieve pointers from ``n_switches`` (sequential pulls)."""
        if n_switches < 0:
            raise ValueError("switch count cannot be negative")
        self.calls += n_switches
        cost = n_switches * self.model.pointer_pull_s
        self._advance(cost)
        return cost

    def _setup_cost(self, n_servers: int) -> float:
        if self.pooled:
            return n_servers * self.model.pooled_dispatch_s
        batches = -(-n_servers // self.concurrency)  # ceil division
        return batches * self.model.connection_init_s

    # -- fan-out query --------------------------------------------------------

    def fanout_query(self, servers: Sequence[str],
                     execute: Callable[[str], QueryResult],
                     *,
                     responsive: Optional[Callable[[str], bool]] = None
                     ) -> tuple[dict[str, QueryResult], Breakdown]:
        """Run ``execute(server)`` on every server, with the §6.2 model.

        Connection initiations serialize on the analyzer in batches of
        ``concurrency`` (one batch at a time, batch members concurrent);
        request, execution and response then proceed in parallel across
        servers (total = slowest server).  Returns per-server results
        plus the latency breakdown in the Fig 12 categories.

        With a ``responsive`` predicate, servers failing it when the
        request lands never execute: each burns the timeout/retry
        budget (``timeout_retry`` phase, concurrent with the live
        servers' execution) and is absent from the result dict — a
        partial answer, never a hang.  When the fabric is sim-bound the
        clock advances through setup and request *before* the predicate
        is evaluated and queries run, so answers reflect the network as
        it is when the request arrives, not when it was issued.
        """
        bd = Breakdown()
        results: dict[str, QueryResult] = {}
        if not servers:
            return results, bd
        self.calls += len(servers)
        setup = self._setup_cost(len(servers))
        bd.add("connection_initiation", setup)
        self._advance(setup)
        bd.add("request", self.model.request_s)
        self._advance(self.model.request_s)
        slowest_exec = 0.0
        slowest_dead = 0.0
        for server in servers:
            hop_cost = self._hop_cost(server)
            if responsive is not None and not responsive(server):
                self.timeouts += 1
                self.attempts_wasted += 1 + self.model.retries
                slowest_dead = max(slowest_dead,
                                   hop_cost + self.timeout_retry_cost())
                continue
            res = execute(server)
            results[server] = res
            cost = (self.model.exec_base_s
                    + res.records_scanned * self.model.per_record_s
                    + hop_cost)
            slowest_exec = max(slowest_exec, cost)
        bd.add("query_execution", slowest_exec)
        bd.add("response", self.model.response_s)
        tail = slowest_exec + self.model.response_s
        if slowest_dead > tail:
            # the dead servers' timeout clock outlives the live answers
            bd.add("timeout_retry", slowest_dead - tail)
        self._advance(max(tail, slowest_dead))
        return results, bd
