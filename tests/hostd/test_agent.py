"""Unit tests for the host agent wiring."""

from repro.core.epoch import EpochClock, EpochRangeEstimator
from repro.core.mphf import HostDirectory
from repro.core.pointer import HierarchicalPointerStore
from repro.hostd.agent import HostAgent
from repro.simnet.packet import make_udp
from repro.simnet.tcp import open_tcp_flow
from repro.simnet.topology import build_linear
from repro.switchd.cherrypick import CherryPickPlanner
from repro.switchd.datapath import SwitchPointerDatapath


def deploy_hosts(net, alpha_ms=10, spill_dir=None):
    directory = HostDirectory(net.host_names)
    planner = CherryPickPlanner(net)
    estimator = EpochRangeEstimator(alpha_ms, 1.0, 2.0)
    for name, sw in net.switches.items():
        store = HierarchicalPointerStore(directory.n, alpha=alpha_ms, k=2)
        SwitchPointerDatapath(sw, EpochClock(alpha_ms), directory.mphf,
                              store, planner=planner)
    agents = {}
    for name, host in net.hosts.items():
        spill = spill_dir / f"{name}.jsonl" if spill_dir else None
        agents[name] = HostAgent(host, clock=EpochClock(alpha_ms),
                                 planner=planner, estimator=estimator,
                                 spill_path=spill)
    return agents


class TestSnifferWiring:
    def test_arriving_traffic_lands_in_store(self):
        net = build_linear(2, 1)
        agents = deploy_hosts(net)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500))
        net.run()
        assert len(agents["h2_0"].store) == 1
        assert agents["h2_0"].decoder.decoded == 1

    def test_query_engine_backed_by_same_store(self):
        net = build_linear(2, 1)
        agents = deploy_hosts(net)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 700))
        net.run()
        res = agents["h2_0"].query.top_k_flows(1)
        assert res.payload[0].bytes == 700


class TestTriggerManagement:
    def test_watch_flow_alerts_on_drop(self):
        net = build_linear(2, 4)
        agents = deploy_hosts(net)
        alerts = []
        sender, _ = open_tcp_flow(net.sim, net.hosts["h1_0"],
                                  net.hosts["h2_0"], sport=1, dport=2,
                                  total_bytes=None)
        sender.start()
        trig = agents["h2_0"].watch_flow(sender.flow, alerts.append)
        net.run(until=0.005)
        net.switches["S1"].clear_routes()  # kill the path mid-flow
        net.run(until=0.015)
        trig.stop()
        sender.stop()
        assert len(alerts) >= 1
        assert alerts[0].host == "h2_0"
        # tuples restricted by the host clock (wired by watch_flow)
        assert alerts[0].tuples[0].epochs is not None

    def test_watch_tcp_sender_timeout(self):
        net = build_linear(2, 1)
        agents = deploy_hosts(net)
        alerts = []
        sender, _ = open_tcp_flow(net.sim, net.hosts["h1_0"],
                                  net.hosts["h2_0"], sport=1, dport=2,
                                  total_bytes=None, min_rto=0.010)
        sender.start()
        agents["h1_0"].watch_tcp_sender(sender, alerts.append)
        net.run(until=0.003)
        net.switches["S1"].clear_routes()
        net.run(until=0.050)
        agents["h1_0"].stop_triggers()
        sender.stop()
        assert alerts and alerts[0].kind == "tcp-timeout"

    def test_stop_triggers_idempotent(self):
        net = build_linear(2, 1)
        agents = deploy_hosts(net)
        agents["h2_0"].watch_flow(
            make_udp("h1_0", "h2_0", 1, 9, 100).flow, lambda a: None)
        agents["h2_0"].stop_triggers()
        agents["h2_0"].stop_triggers()


class TestSpill:
    def test_flush_records(self, tmp_path):
        net = build_linear(2, 1)
        agents = deploy_hosts(net, spill_dir=tmp_path)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500))
        net.run()
        assert agents["h2_0"].flush_records() == 1
        assert (tmp_path / "h2_0.jsonl").exists()
