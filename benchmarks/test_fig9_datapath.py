"""Fig 9 — datapath throughput vs packet size.

Paper: OVS+DPDK forwards ~7 M packets/s; SwitchPointer (k = 1 and k = 5)
matches vanilla OVS at line rate (10 GbE) for packets >= 256 B, and is
~22 % below OVS at 128 B.  Two claims to reproduce in shape:

1. **k-independence** (§4.1.2): one MPHF evaluation per packet, so k = 5
   costs barely more than k = 1 — the pytest-benchmark numbers for the
   two configurations must be close.
2. **packet-size crossover**: modelling throughput as
   ``min(line_rate, pps × size × 8)`` with the per-packet costs measured
   here (pps anchored to the paper's 7 Mpps for SwitchPointer — our
   substrate is interpreted Python, so absolute pps is not comparable),
   SwitchPointer reaches 10 GbE line rate at 256 B but not at 128 B.
"""

import pytest

from repro.core.mphf import MinimalPerfectHash
from repro.core.pointer import HierarchicalPointerStore
from repro.switchd.datapath import VanillaDatapath

from benchmarks.reporting import emit

N_DESTS = 20_000
BATCH = 2_000
LINE_RATE = 10e9
PAPER_SP_PPS = 7e6
PACKET_SIZES = [64, 128, 256, 512, 1024, 1500]


@pytest.fixture(scope="module")
def dests():
    return [f"10.0.{i // 256}.{i % 256}" for i in range(N_DESTS)]


@pytest.fixture(scope="module")
def mphf(dests):
    return MinimalPerfectHash.build(dests)


def sp_batch(mphf, store, dests):
    lookup, update = mphf.lookup, store.update
    for i in range(BATCH):
        update(7, lookup(dests[i]))


def vanilla_batch(vanilla, dests):
    process = vanilla.process
    for i in range(BATCH):
        process(dests[i])


@pytest.mark.benchmark(group="fig9")
def test_fig9_vanilla_forwarding(benchmark, dests):
    vanilla = VanillaDatapath(dests)
    benchmark(vanilla_batch, vanilla, dests)
    benchmark.extra_info["pps"] = BATCH / benchmark.stats["mean"]


@pytest.mark.benchmark(group="fig9")
def test_fig9_switchpointer_k1(benchmark, dests, mphf):
    store = HierarchicalPointerStore(N_DESTS, alpha=10, k=1)
    benchmark(sp_batch, mphf, store, dests)
    benchmark.extra_info["pps"] = BATCH / benchmark.stats["mean"]


@pytest.mark.benchmark(group="fig9")
def test_fig9_switchpointer_k5(benchmark, dests, mphf):
    store = HierarchicalPointerStore(N_DESTS, alpha=10, k=5)
    benchmark(sp_batch, mphf, store, dests)
    benchmark.extra_info["pps"] = BATCH / benchmark.stats["mean"]


@pytest.mark.benchmark(group="fig9")
def test_fig9_shape_analysis(benchmark, dests, mphf):
    """Time all three pipelines in one place and check the Fig 9 shape."""
    import time

    def measure(fn, *args, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return BATCH / best  # packets per second

    def run_all():
        vanilla = VanillaDatapath(dests)
        store1 = HierarchicalPointerStore(N_DESTS, alpha=10, k=1)
        store5 = HierarchicalPointerStore(N_DESTS, alpha=10, k=5)
        return {
            "vanilla": measure(vanilla_batch, vanilla, dests),
            "sp_k1": measure(sp_batch, mphf, store1, dests),
            "sp_k5": measure(sp_batch, mphf, store5, dests),
        }

    pps = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # model throughput curves with pps anchored to the paper's 7 Mpps
    # for SwitchPointer; vanilla scaled by the measured cost ratio
    anchor = PAPER_SP_PPS / pps["sp_k1"]
    lines = [f"measured pipeline rates (pure-Python, batch={BATCH}):"]
    for name, rate in pps.items():
        lines.append(f"  {name:8s} {rate / 1e3:10.1f} kpps "
                     f"(anchored model: {rate * anchor / 1e6:.2f} Mpps)")
    lines.append("")
    lines.append("modelled throughput vs packet size "
                 "(min(10 GbE, pps*size*8)):")
    lines.append("  size_B   vanilla_Gbps   sp_k1_Gbps   sp_k5_Gbps")
    model = {}
    for size in PACKET_SIZES:
        row = {name: min(LINE_RATE, rate * anchor * size * 8) / 1e9
               for name, rate in pps.items()}
        model[size] = row
        lines.append(f"  {size:6d}   {row['vanilla']:12.2f}   "
                     f"{row['sp_k1']:10.2f}   {row['sp_k5']:10.2f}")
    lines.append("(paper: line rate for >=256 B; SP ~22% below OVS at "
                 "128 B; k=1 vs k=5 indistinguishable)")
    emit("fig9_datapath", lines)

    # claim 1: one hash op regardless of k — k=5 within 40% of k=1
    assert pps["sp_k5"] > 0.6 * pps["sp_k1"]
    # vanilla is at least as fast as SwitchPointer
    assert pps["vanilla"] >= pps["sp_k1"] * 0.95
    # claim 2: crossover between 128 B and 256 B for SwitchPointer
    assert model[256]["sp_k1"] == pytest.approx(10.0, rel=0.01)
    assert model[128]["sp_k1"] < 10.0
    assert model[64]["sp_k1"] < model[128]["sp_k1"]
