"""Scale-sweep subsystem: run scenarios across parameter grids.

Public surface:

* :class:`SweepSpec` / :func:`register_sweep` / :data:`SWEEPS` — declare
  (next to a scenario) how that scenario sweeps: grid axes bound to
  knobs, default and nightly grids, the expected diagnosis.
* :class:`Sweep` — expand a grid, run the points in parallel workers,
  aggregate a report.
* :class:`SweepReport` / :func:`validate_report` — the machine-readable
  result document CI archives and gates on.
* ``grid`` helpers — ``--grid hosts=64,256,1024`` parsing and expansion.

See ``docs/SWEEPS.md`` (generated from this registry) for the grid
syntax, the worker model, and the JSON schema.
"""

from .catalog import sweeps_markdown
from .grid import (
    GridError,
    coerce_value,
    expand_grid,
    parse_axis,
    parse_grid,
    point_seed,
)
from .registry import SWEEPS, SweepError, SweepSpec, register_sweep
from .report import SCHEMA, PointResult, SweepReport, validate_report
from .runner import DEFAULT_BASE_SEED, Sweep, execute_point

__all__ = [
    "DEFAULT_BASE_SEED",
    "SCHEMA",
    "SWEEPS",
    "GridError",
    "PointResult",
    "Sweep",
    "SweepError",
    "SweepReport",
    "SweepSpec",
    "coerce_value",
    "execute_point",
    "expand_grid",
    "parse_axis",
    "parse_grid",
    "point_seed",
    "register_sweep",
    "sweeps_markdown",
    "validate_report",
]
