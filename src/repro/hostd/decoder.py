"""Destination-side telemetry decoding (§4.2.1).

When a packet arrives, the host extracts the telemetry header and turns
it into a flow-record update:

* **VLAN mode** — the two tags give (linkID, epochID mod 4096).  The
  full path is reconstructed from (src, dst, linkID) via CherryPick; the
  epoch tag is unwrapped against the host's own epoch estimate; and the
  §4.2.1 range extrapolation assigns every switch on the path an epoch
  range around the embedder's observed epoch.
* **INT mode** — each hop carried its own (switchID, epochID); ranges
  collapse to the observed epoch ± the skew allowance.
* **No telemetry** — counted (``undecodable``); nothing is invented.
"""

from __future__ import annotations

from typing import Optional

from ..core.epoch import (EpochClock, EpochRange, EpochRangeEstimator,
                          unwrap_epoch)
from ..core.headers import IntStack, VlanDoubleTag
from ..simnet.host import Host
from ..simnet.packet import Packet
from ..switchd.cherrypick import CherryPickPlanner
from .records import FlowRecordStore


class TelemetryDecoder:
    """Per-host decoder feeding a :class:`FlowRecordStore`.

    Parameters
    ----------
    host_clock:
        The host's epoch clock — used as the unwrap reference for the
        12-bit epoch tag.  Its skew participates in the same ε bound as
        the switches'.
    planner:
        Topology knowledge for path reconstruction (PathDump hosts hold
        the network map).
    estimator:
        The §4.2.1 range estimator (α, ε, Δ).
    """

    def __init__(self, store: FlowRecordStore, host_clock: EpochClock,
                 planner: CherryPickPlanner,
                 estimator: EpochRangeEstimator):
        self.store = store
        self.host_clock = host_clock
        self.planner = planner
        self.estimator = estimator
        self.decoded = 0
        self.undecodable = 0

    # -- sniffer entry point --------------------------------------------------

    def on_packet(self, host: Host, pkt: Packet, now: float) -> None:
        """Host sniffer hook: decode ``pkt`` and update the record."""
        telemetry = pkt.telemetry
        if isinstance(telemetry, VlanDoubleTag):
            self._decode_vlan(pkt, telemetry, now)
        elif isinstance(telemetry, IntStack):
            self._decode_int(pkt, telemetry, now)
        else:
            self.undecodable += 1

    # -- VLAN double tag -----------------------------------------------------

    def _decode_vlan(self, pkt: Packet, tag: VlanDoubleTag,
                     now: float) -> None:
        key = pkt.flow
        path_nodes = self.planner.reconstruct_path(key.src, key.dst,
                                                   tag.link_id)
        switches = [n for n in path_nodes
                    if n in self.planner.network.switches]
        embedder = self._embedding_switch(path_nodes, tag.link_id)
        embed_index = switches.index(embedder)
        reference = self.host_clock.epoch_of(now)
        observed = unwrap_epoch(tag.epoch_tag, reference)
        ranges = self.estimator.ranges_for_path(switches, embed_index,
                                                observed)
        self._update(pkt, now, switches, ranges, observed)

    def _embedding_switch(self, path_nodes: list[str],
                          link_id: int) -> str:
        """The upstream endpoint of the picked link along the path."""
        link = self.planner.network.link_by_vlan(link_id)
        a, b = link.a.name, link.b.name
        for here, nxt in zip(path_nodes, path_nodes[1:]):
            if {here, nxt} == {a, b}:
                return here
        raise ValueError(
            f"link {link.endpoints} not on reconstructed path {path_nodes}")

    # -- INT stack -----------------------------------------------------------

    def _decode_int(self, pkt: Packet, stack: IntStack,
                    now: float) -> None:
        switches = stack.switch_path()
        eps = self.estimator.range_for(0, 0)  # ± skew allowance around 0
        ranges = {}
        observed = None
        for hop in stack.hops:
            ranges[hop.switch_id] = EpochRange(hop.epoch + eps.lo,
                                               hop.epoch + eps.hi)
            observed = hop.epoch  # last hop's epoch keys byte counts
        self._update(pkt, now, switches, ranges, observed)

    # -- shared --------------------------------------------------------------

    def _update(self, pkt: Packet, now: float, switches: list[str],
                ranges: dict[str, EpochRange],
                observed: Optional[int]) -> None:
        self.store.ingest(pkt.flow, nbytes=pkt.size, t=now,
                          priority=pkt.priority, switch_path=switches,
                          ranges=ranges, observed_epoch=observed)
        self.decoded += 1
