"""The ``bloom`` directory backend: k-hash filter over host slots.

One directory set becomes an ``m``-bit bloom filter (``m`` =
``directory_bits``) instead of the exact S-bit bitmap — membership may
false-positive (the analyzer consults a few extra hosts) but never
false-negative, which is exactly the superset contract the registry
enforces.  Two properties keep the hierarchy's existing machinery
working unchanged:

* **union = OR.**  Level coalescing and control-plane merging OR the
  filter bits, exactly like the exact bitmap.
* **saturation ⇒ exactness.**  A budget of ``m >= n_slots`` (and the
  0 = "auto" default) degenerates to the identity mapping — bit *i* is
  slot *i* — so the filter's bytes are *bit-identical* to the exact
  bitmap and the property suite can pin the two backends together at
  saturating budgets.

Every set carries a shadow exact bitmap (``truth_bytes``) used only to
*measure* the false-positive rate at query time; it is excluded from
``size_bits`` and never consulted by the query paths.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..core.pointer import PointerSet
from .hashing import slot_hashes
from .registry import DirectoryError, DirectorySet, register_directory

_BIT_MASKS = [1 << i for i in range(8)]


class BloomDirectorySet:
    """One bloom-filter directory set with a shadow truth bitmap."""

    backend_name = "bloom"

    __slots__ = ("n_slots", "m_bits", "k_hashes", "_bits", "_truth")

    def __init__(self, n_slots: int, bits: int, hashes: int):
        if n_slots <= 0:
            raise DirectoryError("need at least one slot")
        if bits < 0:
            raise DirectoryError("directory_bits must be >= 0")
        self.n_slots = n_slots
        # 0 = saturating budget; >= n_slots degenerates to the exact
        # identity bitmap (see module docstring)
        self.m_bits = n_slots if bits == 0 or bits >= n_slots else bits
        self.k_hashes = max(1, hashes)
        self._bits = bytearray((self.m_bits + 7) // 8)
        self._truth = PointerSet(n_slots)

    # -- geometry ------------------------------------------------------------

    @property
    def _identity(self) -> bool:
        return self.m_bits >= self.n_slots

    def _indexes(self, slot: int) -> tuple[int, ...]:
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.n_slots})")
        if self._identity:
            return (slot,)
        h1, h2 = slot_hashes(slot)
        m = self.m_bits
        return tuple((h1 + i * h2) % m for i in range(self.k_hashes))

    # -- the DirectorySet surface -------------------------------------------

    def set_slot(self, slot: int) -> None:
        for idx in self._indexes(slot):
            self._bits[idx >> 3] |= _BIT_MASKS[idx & 7]
        self._truth.set_slot(slot)

    def test_slot(self, slot: int) -> bool:
        return all(
            self._bits[idx >> 3] & _BIT_MASKS[idx & 7]
            for idx in self._indexes(slot)
        )

    def clear(self) -> None:
        for i in range(len(self._bits)):
            self._bits[i] = 0
        self._truth.clear()

    def iter_slots(self) -> Iterator[int]:
        """The member *superset*, ascending (every slot that tests in)."""
        for slot in range(self.n_slots):
            if self.test_slot(slot):
                yield slot

    def union_into(self, other: "DirectorySet") -> None:
        if type(other) is not type(self):
            raise DirectoryError(
                f"cannot union {self.backend_name!r} into "
                f"{getattr(other, 'backend_name', type(other).__name__)!r}"
            )
        assert isinstance(other, BloomDirectorySet)
        if (
            other.n_slots != self.n_slots
            or other.m_bits != self.m_bits
            or other.k_hashes != self.k_hashes
        ):
            raise DirectoryError("directory sets differ in geometry")
        mine = int.from_bytes(self._bits, "little")
        if mine:
            theirs = int.from_bytes(other._bits, "little")
            merged = mine | theirs
            if merged != theirs:
                other._bits[:] = merged.to_bytes(len(other._bits), "little")
        self._truth.union_into(other._truth)

    def estimate(self) -> int:
        """Standard bloom cardinality estimate, clamped to the universe."""
        if self._identity:
            return self._truth.popcount
        x = int.from_bytes(self._bits, "little").bit_count()
        m, k = self.m_bits, self.k_hashes
        if x >= m:
            return self.n_slots
        est = -(m / k) * math.log(1.0 - x / m)
        return min(self.n_slots, round(est))

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    def load(self, blob: bytes) -> None:
        if len(blob) != len(self._bits):
            raise DirectoryError(
                f"payload is {len(blob)} bytes, filter needs "
                f"{len(self._bits)}"
            )
        self._bits[:] = blob
        # truth is not serialized (it is measurement-only shadow state);
        # a decoded set answers queries, it does not measure FPR
        self._truth.clear()

    def truth_bytes(self) -> bytes:
        return self._truth.to_bytes()

    @property
    def sketch_params(self) -> tuple[int, int]:
        return (self.m_bits, self.k_hashes)

    @property
    def size_bits(self) -> int:
        return self.m_bits


@register_directory(
    "bloom",
    summary="k-hash bloom filter; false-positive rate falls as the "
    "bit budget grows, exact at saturation",
    memory_note="`min(directory_bits, S)` filter bits per set "
    "(0 = saturating: `S` bits, bit-identical to `exact`)",
)
def _bloom_factory(n_slots: int, bits: int, hashes: int) -> DirectorySet:
    return BloomDirectorySet(n_slots, bits, hashes)
