"""Link flap churn: a trunk link oscillates down/up, driving reroutes.

A flapping transceiver takes one of the two S1→S2 trunks down every few
milliseconds and brings it back shortly after.  Each transition strands
in-flight traffic for the control-plane reconvergence window (packets
sent into the dead link are lost), then reroutes the link's flows onto
the surviving spine — and back again on recovery.  TCP flows pinned to
the flapping side see repeated losses and retransmission timeouts.

Host telemetry exposes the churn without touching the switches: flows
hashed to the flapping spine accumulate epoch ranges at *both* spines
(they were rerouted at least once), while the healthy spine keeps its
stable hash-assigned users.  The egress with zero stable users is the
flapping one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_link_flap
from ..core.epoch import EpochRange
from ..deployment import SwitchPointerDeployment
from ..simnet.packet import PRIO_LOW, PROTO_TCP, FlowKey
from ..simnet.topology import Network
from ..simnet.traffic import TcpTimedFlow, UdpCbrSource, UdpSink
from ..sweep import SweepSpec, register_sweep
from .base import Knob, Scenario, ScenarioSpec, register
from .common import (GBPS, background_knobs, build_diamond, fault_knobs,
                     install_fault_knobs, launch_background,
                     sport_for_side)

#: extra tx/rx pairs added to the diamond when a background population
#: is requested (its endpoints; see the bg_flows knob help)
_BG_PAIRS = 8


@dataclass
class LinkFlapResult:
    """Output of one link-flap run."""

    deployment: SwitchPointerDeployment
    network: Network
    flapped_link: tuple[str, str]
    flaps: int
    down_drops: int
    tcp_timeouts: int
    #: flows hashed to the flapping spine (ground truth: these reroute)
    flapping_side_flows: list[FlowKey] = field(default_factory=list)
    stable_side_flows: list[FlowKey] = field(default_factory=list)


@register
class LinkFlapScenario(Scenario):
    """Periodic down/up churn on the S1—SPA trunk of a diamond.

    ``n_flows`` long-lived CBR flows cross the diamond, half hashed to
    each spine (source ports are chosen to pin the split).  A
    :class:`~repro.simnet.topology.LinkFlapper` cycles the S1—SPA link;
    routing reconverges ``reconverge_delay`` seconds after each
    transition, so every flap blackholes the SPA-side flows briefly
    before rerouting them onto SPB.
    """

    spec = ScenarioSpec(
        name="link-flap",
        summary="a flapping trunk periodically reroutes its flows and "
                "strands packets in the blackhole window",
        paper_ref="§2.4 extended use case; flap-induced reroute churn "
                  "and cascaded retransmits",
        expected_diagnosis="link-flap (suspect: S1-SPA)",
        knobs={
            "n_flows": Knob(8, "long-lived UDP flows (half per spine)"),
            "duration": Knob(0.060, "total run time (s)"),
            "first_down": Knob(0.012, "first down transition (s)"),
            "down_for": Knob(0.006, "down dwell per flap (s)"),
            "up_for": Knob(0.010, "up dwell per flap (s)"),
            "reconverge_delay": Knob(0.002, "routing convergence lag "
                                            "after each transition (s)"),
            "rate_mbps": Knob(20.0, "per-UDP-flow CBR rate (Mbit/s)"),
            "with_tcp": Knob(True, "add an SPA-pinned TCP flow to "
                                   "observe retransmit cascades"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
            **background_knobs(),
            **fault_knobs(),
        },
        smoke_knobs={"n_flows": 4, "duration": 0.045},
        faults=("link-flap",),
    )

    def build(self) -> None:
        p = self.p
        n = p["n_flows"]
        bg_pairs = _BG_PAIRS if p["bg_flows"] > 0 else 0
        net = build_diamond(n + 1 + bg_pairs, trunk_bps=10 * GBPS,
                            host_bps=GBPS)   # pair n: the TCP flow
        deploy = SwitchPointerDeployment(net, alpha_ms=p["alpha_ms"],
                                         k=p["k"])
        self.network, self.deployment = net, deploy

        # ECMP candidate order at S1 follows link creation order:
        # SPA first, then SPB — index 0 is the flapping side.
        self.flapping_side: list[FlowKey] = []
        self.stable_side: list[FlowKey] = []
        rate = p["rate_mbps"] * 1e6
        for i in range(n):
            side = i % 2                 # alternate SPA(0) / SPB(1)
            sport = sport_for_side(f"tx{i}", f"rx{i}", side, start=7000)
            UdpSink(net.hosts[f"rx{i}"], sport)
            src = UdpCbrSource(net.sim, net.hosts[f"tx{i}"], f"rx{i}",
                               sport=sport, dport=sport, rate_bps=rate,
                               packet_size=1000, priority=PRIO_LOW,
                               start=0.001,
                               duration=p["duration"] - 0.005)
            (self.flapping_side if side == 0
             else self.stable_side).append(src.flow)

        self.tcp_app = None
        if p["with_tcp"]:
            # pin the TCP flow to the flapping spine: its losses during
            # each blackhole window drive the retransmit cascade
            sport = sport_for_side(f"tx{n}", f"rx{n}", 0, start=7000,
                                   proto=PROTO_TCP, dport=200)
            self.tcp_app = TcpTimedFlow(
                net.sim, net.hosts[f"tx{n}"], net.hosts[f"rx{n}"],
                duration=p["duration"] - 0.010, sport=sport, dport=200,
                priority=PRIO_LOW)
            self.flapping_side.append(self.tcp_app.sender.flow)

        # the fault, declared through the registry: periodic down/up
        # churn on the S1—SPA trunk from first_down onward
        self.flap_fault = self.add_fault(
            "link-flap", a="S1", b="SPA", down_for=p["down_for"],
            up_for=p["up_for"], start=p["first_down"],
            reconverge_delay=p["reconverge_delay"])
        # ambient stressor knobs; S1 is the diamond's CherryPick
        # embedder (its trunk egress pins every crossing path), so
        # partial deployment always spares it
        install_fault_knobs(self, extra_spare=("S1",))

        # the background flow population (the sweep flows= axis): its
        # endpoints are dedicated tx-side pairs, so every background
        # flow hairpins at S1 and never crosses the flapping trunk —
        # short-lived flows that outlive no flap would otherwise count
        # as *stable* users of the flapped egress and mask the churn
        # signal the diagnosis keys on.  The record tables and the
        # consult fan-out still carry the full population.
        self.background = launch_background(
            net, p, duration=p["duration"],
            eligible=[f"tx{i}" for i in range(n + 1, n + 1 + bg_pairs)])

    def run(self) -> None:
        # the plan's finalize() stops the flapper once this returns
        self.network.run(until=self.p["duration"])

    def collect(self) -> dict:
        net = self.network
        link = net.link_between("S1", "SPA")
        timeouts = (self.tcp_app.sender.timeouts
                    if self.tcp_app is not None else 0)
        self.payload = LinkFlapResult(
            deployment=self.deployment, network=net,
            flapped_link=("S1", "SPA"), flaps=self.flap_fault.flaps,
            down_drops=link.down_drops, tcp_timeouts=timeouts,
            flapping_side_flows=list(self.flapping_side),
            stable_side_flows=list(self.stable_side))
        bg = self.background
        return {
            "flaps": self.payload.flaps,
            "down_drops": self.payload.down_drops,
            "tcp_timeouts": timeouts,
            "flow_count": (len(self.flapping_side)
                           + len(self.stable_side)
                           + (bg.n_flows if bg is not None else 0)),
            "bg_packets_delivered": (bg.delivered
                                     if bg is not None else 0),
        }

    def diagnose(self) -> list[Verdict]:
        last_epoch = self.deployment.datapaths["S1"].clock.epoch_of(
            self.network.sim.now)
        return [diagnose_link_flap(self.deployment.analyzer, "S1",
                                   epochs=EpochRange(0, last_epoch))]


register_sweep(SweepSpec(
    scenario="link-flap",
    summary="flapping-trunk localization as the crossing and background "
            "flow populations scale",
    expect_problem="link-flap",
    axes={
        "victims": "n_flows",
        "flows": "bg_flows",
        "mix": "bg_mix",
        "flow_kb": "bg_flow_kb",
        "alpha_ms": "alpha_ms",
        "down_for": "down_for",
    },
    default_grid={"victims": (8, 16, 32), "flows": (0, 200)},
    nightly_grid={"victims": (8, 16), "flows": (0, 200)},
))
