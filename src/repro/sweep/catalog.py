"""Render ``docs/SWEEPS.md`` from the sweep registry metadata.

Same one-source-of-truth idiom as the scenario catalogue: the page and
``python -m repro.cli sweep list`` render identical
:class:`~repro.sweep.registry.SweepSpec` objects.  Refresh with::

    python tools/gen_sweep_docs.py

A tier-1 test (and the CI docs job) asserts the checked-in page matches
this renderer's output.
"""

from __future__ import annotations

from .registry import SWEEPS, SweepSpec
from .report import SCHEMA

_PREAMBLE = """\
# Scale sweeps

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_sweep_docs.py -->

A *sweep* executes one registered scenario across a parameter grid —
the thousand-host scale axis the single-run scenario catalogue
([SCENARIOS.md](SCENARIOS.md)) does not cover.  Run one with

```sh
python -m repro.cli sweep run <scenario> [--grid axis=v1,v2,...] ...
```

and list the registered sweeps with `python -m repro.cli sweep list`.

## Grid syntax

Each repeated `--grid` flag names one axis and its comma-separated
values (`--grid hosts=64,256,1024 --grid alpha_ms=5,10`); values are
coerced to bool/int/float/str.  The sweep runs the cartesian product of
all axes in row-major order (last axis fastest).  Axes are declared per
sweep (tables below) and bind to scenario knobs; anything not on an
axis can still be pinned for every point with `--knob key=value`.

## Worker model and seeds

Grid points are independent experiments: they execute in
`multiprocessing` workers (`--workers N`, default = CPU count capped at
the point count; `1` = inline, no pool).  Every point derives a stable
seed from `(base seed, point index)` via CRC32, applied before the
scenario builds — so any point reproduces bit-for-bit, regardless of
worker count or completion order, by replaying its recorded `knobs`
and `seed` from the report:
`python -m repro.cli run <scenario> --seed <seed> --knob key=value ...`

## Report schema (`{schema}`)

`sweep run` writes one JSON document (default `results/sweep_<scenario>.json`):

| field | meaning |
|---|---|
| `schema` | schema id, currently `{schema}` |
| `scenario`, `expect_problem` | what ran and the verdict that counts as correct |
| `base_seed`, `workers`, `grid` | reproduction identity |
| `points[]` | one entry per grid point (below) |
| `summary` | point/ok/error counts, max peak records, total wall time |

Each point carries `index`, `params` (axis values), `knobs` (resolved
scenario knobs), `seed`, `ok` / `diagnosis_ok`, `problems` / `suspects`
(analyzer verdicts), `wall_time_s` + per-phase `phase_s`, `sim_time_s`,
`peak_records` / `total_records` / `evicted_records` (host record-table
footprint), scenario `measurements`, and `error` (null unless the point
raised).  `repro.sweep.validate_report` checks the structure; the CI
benchmark-regression gate (`tools/check_bench_regression.py`) validates
before trusting any number.
"""


def _spec_markdown(spec: SweepSpec) -> str:
    lines = [f"## `{spec.scenario}`", "", spec.summary, ""]
    lines.append(f"- **Scenario:** `{spec.scenario}` (see SCENARIOS.md)")
    correct = f"`{spec.expect_problem}`"
    if spec.expect_suspect_knob:
        correct += f" naming the `{spec.expect_suspect_knob}` knob's value"
    lines.append(f"- **Correct diagnosis:** {correct}")
    if spec.base_knobs:
        pinned = ", ".join(f"`{k}={v!r}`" for k, v in sorted(spec.base_knobs.items()))
        lines.append(f"- **Pinned knobs:** {pinned}")
    if spec.nightly_grid:
        nightly = " ".join(
            f"{axis}={','.join(str(v) for v in values)}"
            for axis, values in spec.nightly_grid.items()
        )
        lines.append(f"- **Nightly grid:** `{nightly}`")
    lines.append(f"- **Run:** `{spec.cli_example}`")
    lines.append("")
    lines.append("| axis | binds knob | default grid |")
    lines.append("|---|---|---|")
    for axis, knob in spec.axes.items():
        values = spec.default_grid.get(axis)
        shown = ",".join(str(v) for v in values) if values else "(not swept)"
        lines.append(f"| `{axis}` | `{knob}` | `{shown}` |")
    return "\n".join(lines) + "\n"


def sweeps_markdown() -> str:
    """The full ``docs/SWEEPS.md`` body."""
    sections = [_PREAMBLE.replace("{schema}", SCHEMA)]
    sections.extend(_spec_markdown(spec) for spec in SWEEPS.specs())
    return "\n".join(sections)
