"""Packet and flow-identity model.

A :class:`Packet` is the unit moved by the simulator.  It carries:

* a :class:`FlowKey` (the classic 5-tuple),
* a size in bytes (headers included — serialization delay uses this),
* a DSCP priority class (the paper's experiments use strict priorities),
* protocol payload metadata (TCP sequence/ack numbers and flags), and
* a telemetry header area that SwitchPointer switches write into
  (:mod:`repro.core.headers`).

Packets are intentionally plain mutable objects: a single Python object
travels end to end, the way a real packet's header region is edited in
place by switches on its path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, NamedTuple, Optional

# Protocol numbers (IANA).
PROTO_TCP = 6
PROTO_UDP = 17

# DSCP-style priority classes used throughout the paper's scenarios.
# Larger value = higher priority (served first by strict-priority queues).
PRIO_LOW = 0
PRIO_MEDIUM = 1
PRIO_HIGH = 2

#: Conventional full-size Ethernet frame used by the bulk-transfer apps.
DEFAULT_MTU = 1500
#: TCP/IP+Ethernet header bytes modelled on every segment.
HEADER_BYTES = 66
#: Maximum TCP payload per segment under :data:`DEFAULT_MTU`.
DEFAULT_MSS = DEFAULT_MTU - HEADER_BYTES


class FlowKey(NamedTuple):
    """The 5-tuple identifying a flow."""

    src: str
    dst: str
    sport: int
    dport: int
    proto: int

    def reversed(self) -> "FlowKey":
        """Key of the reverse direction (used by ACK streams)."""
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)

    @property
    def is_tcp(self) -> bool:
        return self.proto == PROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.proto == PROTO_UDP

    def pretty(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto,
                                                         str(self.proto))
        return f"{proto}:{self.src}:{self.sport}->{self.dst}:{self.dport}"


@dataclass
class TcpMeta:
    """TCP metadata carried by a segment.

    ``seq`` is the byte offset of the first payload byte; ``ack`` is the
    cumulative acknowledgement (next expected byte).  Only the fields the
    simplified Reno model needs are present.
    """

    seq: int = 0
    ack: int = 0
    is_ack: bool = False
    syn: bool = False
    fin: bool = False


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated packet.

    Attributes
    ----------
    flow:
        The 5-tuple flow identity.
    size:
        Total on-wire size in bytes (headers included).
    priority:
        DSCP class; strict-priority queues serve higher values first.
    created_at:
        Simulated time the packet entered the network at its source NIC.
    tcp:
        TCP metadata, or ``None`` for UDP packets.
    telemetry:
        Header area written by SwitchPointer switches.  ``None`` until the
        first switch on the path embeds something.  The concrete object is
        a codec class from :mod:`repro.core.headers`; the simulator treats
        it opaquely.
    hops:
        Names of switches traversed so far (ground truth used by tests to
        validate path reconstruction — a real packet does not carry this).
    """

    flow: FlowKey
    size: int
    priority: int = PRIO_LOW
    created_at: float = 0.0
    payload_bytes: int = 0
    tcp: Optional[TcpMeta] = None
    telemetry: Any = None
    hops: list[str] = field(default_factory=list)
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def dst(self) -> str:
        return self.flow.dst

    @property
    def src(self) -> str:
        return self.flow.src

    def record_hop(self, switch_name: str) -> None:
        """Append ground-truth trajectory (for validation only)."""
        self.hops.append(switch_name)


def make_udp(src: str, dst: str, sport: int, dport: int, size: int,
             priority: int = PRIO_LOW, created_at: float = 0.0) -> Packet:
    """Convenience constructor for a UDP datagram."""
    key = FlowKey(src, dst, sport, dport, PROTO_UDP)
    return Packet(flow=key, size=size, priority=priority,
                  created_at=created_at,
                  payload_bytes=max(0, size - HEADER_BYTES))


def make_tcp(src: str, dst: str, sport: int, dport: int, *,
             payload: int, seq: int = 0, ack: int = 0, is_ack: bool = False,
             syn: bool = False, fin: bool = False,
             priority: int = PRIO_LOW, created_at: float = 0.0) -> Packet:
    """Convenience constructor for a TCP segment."""
    key = FlowKey(src, dst, sport, dport, PROTO_TCP)
    meta = TcpMeta(seq=seq, ack=ack, is_ack=is_ack, syn=syn, fin=fin)
    return Packet(flow=key, size=payload + HEADER_BYTES, priority=priority,
                  created_at=created_at, payload_bytes=payload, tcp=meta)
