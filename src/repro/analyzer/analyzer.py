"""The SwitchPointer analyzer (§4.3).

The analyzer coordinates switch agents and host agents:

* receives victim alerts from host triggers,
* pulls pointer sets from the switches named in the alert (for the
  epoch ranges the alert carries),
* decodes pointer bits back to end-host names via the
  :class:`repro.core.mphf.HostDirectory` it built and distributed,
* **prunes the search radius** using topology: a host in the pointer is
  only relevant if the suspect switch reaches it through a link the
  victim's path also uses (§4.3 — "filters out irrelevant end-hosts
  ... if the paths ... do not share any path segment of the flow"),
* fans out queries to the surviving hosts through the latency-modelled
  RPC fabric.

Every step contributes to a :class:`repro.rpc.fabric.Breakdown`, which
is how the Fig 7/8/12 latency decompositions are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import networkx as nx

from ..core.epoch import EpochRange
from ..core.mphf import HostDirectory
from ..core.pointer import PointerSnapshot
from ..hostd.agent import HostAgent
from ..hostd.query import FlowSummary, QueryResult
from ..hostd.triggers import VictimAlert
from ..rpc.fabric import Breakdown, RpcFabric
from ..simnet.packet import FlowKey
from ..simnet.topology import Network
from ..switchd.agent import ControlPlaneStore, SwitchAgent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import DiagnosisSession


@dataclass
class HostsPerSwitch:
    """Pointer-decode result: which hosts hold telemetry for a switch."""

    switch: str
    epochs: EpochRange
    hosts: list[str] = field(default_factory=list)
    pruned: list[str] = field(default_factory=list)


class Analyzer:
    """Network-wide coordinator."""

    def __init__(self, *, network: Network, directory: HostDirectory,
                 switch_agents: dict[str, SwitchAgent],
                 host_agents: dict[str, HostAgent],
                 rpc: Optional[RpcFabric] = None,
                 control_store: Optional[ControlPlaneStore] = None,
                 directory_backend: str = "exact"):
        self.network = network
        self.directory = directory
        self.switch_agents = switch_agents
        self.host_agents = host_agents
        self.rpc = rpc if rpc is not None else RpcFabric()
        self.control_store = control_store
        #: registry name of the switches' directory backend; anything
        #: but "exact" means pointer answers are supersets and verdicts
        #: built from them carry the ``approx`` evidence label
        self.directory_backend = directory_backend
        self.alerts: list[VictimAlert] = []
        # false-positive accounting for sketch directories: slots a
        # query returned that the shadow truth says were never set,
        # over the negatives each query tested (measurement only —
        # query answers never consult the truth)
        self.dir_queries = 0
        self.dir_approx_queries = 0
        self.dir_false_positive_slots = 0
        self.dir_negative_slots = 0
        # topology cache (§4.3 pruning): per-source shortest-path link
        # sets, computed with one BFS per source per topology version
        self._topo_graph: Optional[nx.Graph] = None
        self._links_from: dict[str, dict[str, frozenset]] = {}

    # -- alert ingestion -------------------------------------------------------

    def ingest_alert(self, alert: VictimAlert) -> None:
        """Host-trigger sink; keeps the alert queue for the operator."""
        self.alerts.append(alert)

    # -- online diagnosis ------------------------------------------------------

    @property
    def site(self) -> Optional[str]:
        """The switch the analyzer is (notionally) attached at.

        Deterministic — the lexicographically first switch — so the
        topology-path-derived per-hop RPC costs are reproducible.
        """
        return min(self.network.switches) if self.network.switches else None

    def hops_to(self, server: str) -> int:
        """Topology hop count from the analyzer site to ``server``.

        Served from the memoized per-source BFS the §4.3 pruning
        already maintains (a shortest path's link set has exactly one
        link per hop).  Unreachable or unknown servers cost 0 extra —
        the timeout machinery, not wire distance, prices those.
        """
        site = self.site
        if site is None:
            return 0
        links = self._path_link_sets_from(site).get(server)
        return len(links) if links is not None else 0

    def host_responsive(self, host: str) -> bool:
        """Can ``host`` answer an analyzer RPC right now?

        False for crashed agents and for hosts whose access link is
        down — the two conditions under which the RPC fabric times the
        host out and the diagnosis degrades instead of hanging.
        """
        agent = self.host_agents.get(host)
        if agent is None or not agent.alive:
            return False
        node = self.network.hosts.get(host)
        if node is not None and node.nic is not None:
            return node.nic.link.up
        return True

    def ingest_seq(self) -> int:
        """Global decoded-ingest watermark: sum of every host store's
        ``ingested`` counter.  Freshness is measured as the difference
        of this value between trigger and verdict."""
        return sum(agent.store.ingested
                   for agent in self.host_agents.values())

    def open_session(self, *, stale_after_s: Optional[float] = None
                     ) -> "DiagnosisSession":
        """Open an online-diagnosis session (see :mod:`.session`)."""
        from .session import DiagnosisSession
        return DiagnosisSession(self, stale_after_s=stale_after_s)

    # -- pointer retrieval -----------------------------------------------------

    def is_instrumented(self, switch: str) -> bool:
        """Does ``switch`` currently run SwitchPointer?

        False for switches a partial deployment never covered (or an
        instrumentation outage stripped): they publish no pointers, and
        evidence about them must come from end-hosts alone.
        """
        return switch in self.switch_agents

    def hosts_for(self, switch: str, epochs: EpochRange, *,
                  level: Optional[int] = 1,
                  offline: bool = False) -> list[str]:
        """Decode the switch's pointer for ``epochs`` into host names.

        ``level=None`` selects automatically: the finest hierarchy level
        still covering the window, falling back to the pushed offline
        history (§4.1.1's intended access pattern).

        An *uninstrumented* switch (partial deployment) has no pointer
        to decode; the fallback is host-only evidence — every known
        host is a candidate, and the caller's topology pruning / record
        filters do the narrowing the pointer would have done.  A name
        that is no switch at all still raises (a typo must not come
        back as a plausible all-hosts answer).
        """
        agent = self.switch_agents.get(switch)
        if agent is None:
            if switch not in self.network.switches:
                raise KeyError(switch)
            return sorted(self.host_agents)
        if offline:
            snaps = agent.offline_snapshots(epochs.lo, epochs.hi)
        elif level is None:
            snaps, _source = agent.best_effort_snapshots(epochs.lo,
                                                         epochs.hi)
        else:
            snaps = agent.pull(level, epochs.lo, epochs.hi)
        return self.directory.hosts_of(self._score_slots(snaps))

    def _score_slots(self, snaps: Sequence[PointerSnapshot]) -> set[int]:
        """Union the snapshots' slots, scoring sketches as we go.

        A sketch answer is a superset of the truth (registration
        enforces that); the shadow-truth bitmaps each snapshot carries
        let us count how many of the slots a query *could* have
        wrongly returned actually were (the false-positive rate the
        ``directory-bits`` sweep charts).  The returned answer never
        consults the truth — it is exactly what a real deployment,
        which has no truth bitmap, would act on.
        """
        slots: set[int] = set()
        approx = False
        for snap in snaps:
            slots.update(snap.slots())
            if snap.backend != "exact":
                approx = True
        self.dir_queries += 1
        if approx:
            self.dir_approx_queries += 1
            truth: set[int] = set()
            for snap in snaps:
                truth.update(snap.true_slots())
            n = self.directory.n
            self.dir_false_positive_slots += len(slots - truth)
            self.dir_negative_slots += n - len(truth)
        return slots

    @property
    def directory_approx(self) -> bool:
        """True when switch pointers come from a lossy sketch backend."""
        return self.directory_backend != "exact"

    def directory_stats(self) -> dict[str, float]:
        """Cumulative sketch-accuracy counters (sweep measurements).

        ``fpr`` is false-positive slots over negative slots across all
        pointer queries so far — 0.0 for the exact backend and for
        saturating sketch budgets, rising as ``directory_bits`` shrinks.
        """
        neg = self.dir_negative_slots
        return {
            "queries": float(self.dir_queries),
            "approx_queries": float(self.dir_approx_queries),
            "false_positive_slots": float(self.dir_false_positive_slots),
            "negative_slots": float(neg),
            "fpr": self.dir_false_positive_slots / neg if neg else 0.0,
        }

    def locate_relevant_hosts(self, alert: VictimAlert, *, level: int = 1,
                              prune: bool = True, offline: bool = False
                              ) -> tuple[list[HostsPerSwitch], Breakdown]:
        """The §3 walkthrough: alert → pointers → candidate hosts.

        Returns per-switch host lists and the pointer-retrieval latency.
        """
        bd = Breakdown()
        bd.add("pointer_retrieval",
               self.rpc.pointer_pull_cost(len(alert.tuples)))
        victim_links = self._path_links(alert.flow, alert.switch_path)
        out = []
        for tup in alert.tuples:
            hosts = self.hosts_for(tup.switch, tup.epochs, level=level,
                                   offline=offline)
            kept, dropped = hosts, []
            if prune:
                kept, dropped = self._prune(tup.switch, hosts,
                                            victim_links)
            out.append(HostsPerSwitch(switch=tup.switch, epochs=tup.epochs,
                                      hosts=kept, pruned=dropped))
        return out, bd

    # -- topology cache ---------------------------------------------------------

    def invalidate_topology_cache(self) -> None:
        """Drop memoized shortest-path link sets (topology changed)."""
        self._topo_graph = None
        self._links_from.clear()

    def _cached_graph(self) -> nx.Graph:
        """The network graph, auto-invalidating the path-link cache.

        :meth:`Network.graph` returns a new object whenever nodes or
        links changed, so an identity check is enough to notice any
        topology edit without the network having to call back into us.
        """
        g = self.network.graph()
        if g is not self._topo_graph:
            self._topo_graph = g
            self._links_from.clear()
        return g

    def _path_link_sets_from(self, source: str) -> dict[str, frozenset]:
        """For every node reachable from ``source``: the undirected link
        set of one shortest path to it.

        One BFS per (topology, source), memoized — pruning an alert no
        longer costs one shortest-path search per candidate host.
        """
        g = self._cached_graph()
        cached = self._links_from.get(source)
        if cached is None:
            cached = {}
            if source in g:
                for node, path in nx.single_source_shortest_path(
                        g, source).items():
                    cached[node] = frozenset(
                        frozenset(pair) for pair in zip(path, path[1:]))
            self._links_from[source] = cached
        return cached

    # -- search-radius pruning (§4.3) ------------------------------------------

    def _path_links(self, flow: FlowKey, switch_path: Sequence[str]
                    ) -> set[frozenset]:
        """Undirected link set of the victim's end-to-end path.

        The alert may name only a subset of on-path switches; gaps
        between consecutive waypoints are filled by shortest paths so
        pruning never sees a disconnected fragment.
        """
        g = self._cached_graph()
        nodes = [flow.src] + [s for s in switch_path] + [flow.dst]
        links: set[frozenset] = set()
        for a, b in zip(nodes, nodes[1:]):
            if a == b or a not in g or b not in g:
                continue
            segment_links = self._path_link_sets_from(a).get(b)
            if segment_links is None:
                continue  # no path between the waypoints
            links.update(segment_links)
        return links

    def _prune(self, switch: str, hosts: list[str],
               victim_links: set[frozenset]
               ) -> tuple[list[str], list[str]]:
        """Keep hosts the switch reaches through a victim-path segment.

        A flow destined to host h contended with the victim at ``switch``
        only if it left the switch on a link the victim also used; hosts
        reached via disjoint segments cannot have shared a queue with
        the victim and are dropped from the search radius.
        """
        reach = self._path_link_sets_from(switch)
        kept, dropped = [], []
        for h in hosts:
            links = reach.get(h)
            if links is not None and links & victim_links:
                kept.append(h)
            else:
                dropped.append(h)
        return kept, dropped

    # -- host consultation -------------------------------------------------------

    def consult_hosts(self, hosts: Sequence[str],
                      query: Callable[[HostAgent], QueryResult],
                      *, session: Optional["DiagnosisSession"] = None
                      ) -> tuple[dict[str, QueryResult], Breakdown]:
        """Fan a query out to ``hosts`` through the RPC latency model.

        Unresponsive hosts (crashed agent, downed access link) are
        timed out by the fabric and absent from the result dict — a
        partial answer.  When a :class:`DiagnosisSession` is attached,
        the round's outcome (per-host watermarks, missing hosts) is
        recorded on it so the final verdict can be tagged.
        """
        known = [h for h in hosts if h in self.host_agents]

        def execute(server: str) -> QueryResult:
            return query(self.host_agents[server])

        results, bd = self.rpc.fanout_query(known, execute,
                                            responsive=self.host_responsive)
        if session is not None:
            session.note_round(known, results)
        return results, bd

    def contending_flows(self, hosts: Sequence[str], switch: str,
                         epochs: EpochRange, victim: VictimAlert
                         ) -> tuple[list[tuple[str, FlowSummary]], Breakdown]:
        """Summaries of non-victim flows crossing (switch, epochs).

        Returns (host, flow summary) pairs for every flow — other than
        the victim itself — whose record at some consulted host matches
        the (switchID, epochID-range) filter.
        """
        results, bd = self.consult_hosts(
            hosts, lambda agent: agent.query.flows_matching(switch, epochs))
        victim_keys = {victim.flow, victim.flow.reversed()}
        culprits = []
        for host, res in results.items():
            for summary in res.payload:
                if summary.flow in victim_keys:
                    continue  # the victim itself / its own ACK stream
                culprits.append((host, summary))
        return culprits, bd

    # -- MPHF lifecycle (§4.3) -----------------------------------------------

    def rebuild_directory(self, hosts: Sequence[str]) -> HostDirectory:
        """Rebuild + 'redistribute' the MPHF after host-set changes.

        In the paper the analyzer constructs a new minimal perfect hash
        whenever end-hosts are (permanently) added and pushes it to all
        switches.  Here redistribution means handing the new directory
        to the caller, which rewires the switch datapaths; tests use
        this to cover the host-churn path.  Host churn implies the
        topology changed, so the memoized path-link sets go with it.
        """
        self.directory = HostDirectory(list(hosts))
        self.invalidate_topology_cache()
        return self.directory
