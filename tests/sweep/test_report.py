"""SweepReport JSON round-trip and schema validation."""

import json

from repro.sweep import PointResult, SweepReport, validate_report


def make_report() -> SweepReport:
    points = [
        PointResult(
            index=i,
            params={"hosts": 64 * (i + 1)},
            knobs={"hosts": 64 * (i + 1), "record_shards": 8},
            seed=1000 + i,
            diagnosis_ok=(i != 1),
            problems=["incast"] if i != 1 else [],
            suspects=["leaf0"] if i != 1 else [],
            wall_time_s=0.25 + i,
            phase_s={"build": 0.1, "run": 0.1},
            sim_time_s=0.06,
            flow_count=200 * (i + 1),
            peak_records=9,
            total_records=9,
            evicted_records=0,
            ingest_records_per_s=1500.5,
            measurements={"alerts": 1},
            error=None if i != 2 else "ValueError: boom",
        )
        for i in range(3)
    ]
    return SweepReport(
        sweep="incast",
        scenario="incast",
        expect_problem="incast",
        base_seed=1729,
        workers=2,
        grid={"hosts": [64, 128, 192]},
        points=points,
        wall_time_s=2.0,
    )


class TestRoundTrip:
    def test_to_json_is_schema_valid(self):
        assert validate_report(make_report().to_json()) == []

    def test_json_serializable(self):
        text = json.dumps(make_report().to_json())
        assert validate_report(json.loads(text)) == []

    def test_from_json_round_trips(self):
        doc = make_report().to_json()
        again = SweepReport.from_json(doc).to_json()
        assert again == doc

    def test_summary_counts(self):
        summary = make_report().summary()
        assert summary["points"] == 3
        assert summary["ok"] == 1  # point 1 misdiagnosed, point 2 errored
        assert summary["diagnosis_failures"] == 1
        assert summary["errors"] == 1
        assert summary["max_flow_count"] == 600

    def test_ok_requires_no_error_and_correct_diagnosis(self):
        report = make_report()
        assert report.points[0].ok
        assert not report.points[1].ok
        assert not report.points[2].ok
        assert not report.all_ok


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_report([]) != []
        assert validate_report(None) != []

    def test_rejects_missing_top_field(self):
        doc = make_report().to_json()
        del doc["grid"]
        assert any("grid" in e for e in validate_report(doc))

    def test_rejects_wrong_schema_id(self):
        doc = make_report().to_json()
        doc["schema"] = "something/v0"
        assert validate_report(doc) != []

    def test_rejects_corrupt_point(self):
        doc = make_report().to_json()
        del doc["points"][1]["wall_time_s"]
        assert any("wall_time_s" in e for e in validate_report(doc))

    def test_rejects_bool_masquerading_as_int(self):
        doc = make_report().to_json()
        doc["points"][0]["peak_records"] = True
        assert any("peak_records" in e for e in validate_report(doc))

    def test_rejects_out_of_order_indices(self):
        doc = make_report().to_json()
        doc["points"].reverse()
        assert any("indices" in e for e in validate_report(doc))

    def test_rejects_summary_count_mismatch(self):
        doc = make_report().to_json()
        doc["summary"]["points"] = 99
        assert any("summary.points" in e for e in validate_report(doc))

    def test_rejects_unknown_top_level_key_naming_it(self):
        """A typo in a hand-edited report must fail loudly, naming the
        offending key — not be silently tolerated."""
        doc = make_report().to_json()
        doc["expect_probelm"] = "incast"  # the classic transposition
        errors = validate_report(doc)
        assert any("unknown top-level field 'expect_probelm'" in e
                   for e in errors)

    def test_unknown_key_error_lists_allowed_fields(self):
        doc = make_report().to_json()
        doc["bogus"] = 1
        (error,) = [e for e in validate_report(doc) if "bogus" in e]
        assert "allowed:" in error
        assert "scenario" in error
