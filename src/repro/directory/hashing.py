"""Deterministic slot hashing shared by the sketch backends.

Same construction as the MPHF's internal hash (keyed blake2b truncated
to 64 bits): seeded, process-independent, and free of any global RNG —
the sketches must answer identically across runs, workers, and resumed
sweeps, so nothing here may depend on ``PYTHONHASHSEED`` or
``random``.  Per-slot digests are memoized (slots repeat heavily on
the per-packet update path; the universe is the MPHF range, which is
bounded by the host population).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

#: double-hashing seeds (arbitrary fixed constants, part of the format)
_SEED_A = 0x51D1
_SEED_B = 0xB100
#: minhash row seeds start here (one seed per signature row)
_SEED_ROW = 0x4C53


def hash64(data: bytes, seed: int) -> int:
    """Keyed 64-bit blake2b digest of ``data``."""
    h = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "big")
    )
    return int.from_bytes(h.digest(), "big")


@lru_cache(maxsize=1 << 17)
def slot_hashes(slot: int) -> tuple[int, int]:
    """``(h1, h2)`` double-hashing pair for one slot (h2 forced odd, so
    probe sequences cover any power-of-two filter size)."""
    data = slot.to_bytes(8, "big")
    return hash64(data, _SEED_A), hash64(data, _SEED_B) | 1


@lru_cache(maxsize=1 << 17)
def row_hashes(slot: int, rows: int) -> tuple[int, ...]:
    """One 64-bit minhash draw per signature row for ``slot``."""
    data = slot.to_bytes(8, "big")
    return tuple(hash64(data, _SEED_ROW + row) for row in range(rows))
