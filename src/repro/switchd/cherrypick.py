"""CherryPick-style link sampling (§4.1.3).

The commodity-switch design cannot afford per-hop INT records, so
SwitchPointer extends CherryPick [SOSR'15]: on clos topologies a single
well-chosen *link* pins the entire end-to-end path (e.g. the
aggregate-core link of a 5-hop fat-tree path).  The switch whose egress
link pins the path embeds that linkID plus its current epochID as two
VLAN tags; the destination reconstructs the full switch list from
(src, dst, linkID) alone.

:class:`CherryPickPlanner` answers the per-packet question "does *this*
egress link pin the *src→dst* path?" directly from the topology: the
link pins the path iff exactly one shortest src→dst path crosses it.
Decisions are cached, mirroring how the real system compiles them into
static OpenFlow rules (one rule per port, §4.1.3).
"""

from __future__ import annotations

from typing import Optional

from ..simnet.link import Link
from ..simnet.topology import Network, TopologyError


class CherryPickPlanner:
    """Precomputed/cached link-pinning decisions over one topology."""

    def __init__(self, network: Network):
        self.network = network
        self._pins_cache: dict[tuple[str, str, int], bool] = {}
        self._path_cache: dict[tuple[str, str, int],
                               Optional[list[str]]] = {}

    def pins_path(self, src: str, dst: str, link: Link) -> bool:
        """True iff ``link`` lies on exactly one shortest src→dst path.

        Unknown or unreachable endpoints (e.g. a destination being
        decommissioned while routes linger) simply do not pin — the
        datapath then skips embedding rather than failing the packet.
        """
        key = (src, dst, link.link_id)
        hit = self._pins_cache.get(key)
        if hit is not None:
            return hit
        graph = self.network.graph()
        if src not in graph or dst not in graph:
            self._pins_cache[key] = False
            return False
        a, b = link.a.name, link.b.name
        count = 0
        match: Optional[list[str]] = None
        try:
            paths = self.network.shortest_paths(src, dst)
        except Exception:
            paths = []
        for path in paths:
            hops = set(zip(path, path[1:]))
            if (a, b) in hops or (b, a) in hops:
                count += 1
                match = path
        pins = count == 1
        self._pins_cache[key] = pins
        self._path_cache[key] = match if pins else None
        return pins

    def reconstruct_path(self, src: str, dst: str,
                         vlan_id: int) -> list[str]:
        """Full node path for a packet that carried wire id ``vlan_id``.

        This is the destination-side decode: the unique shortest src→dst
        path through the identified link.  Raises
        :class:`TopologyError` when the link does not pin the path —
        which means the embedding rule was wrong, never that data was
        lost.
        """
        link = self.network.link_by_vlan(vlan_id)
        cached = self._path_cache.get((src, dst, link.link_id))
        if cached is not None:
            return list(cached)
        if not self.pins_path(src, dst, link):
            raise TopologyError(
                f"link {link.endpoints} does not pin {src}->{dst}")
        return list(self._path_cache[(src, dst, link.link_id)] or [])

    def switch_path(self, src: str, dst: str, vlan_id: int) -> list[str]:
        """Switch names only (hosts trimmed) for the reconstructed path."""
        return [n for n in self.reconstruct_path(src, dst, vlan_id)
                if n in self.network.switches]

    def embedding_hop(self, src: str, dst: str) -> Optional[str]:
        """Which switch on the (first) shortest path would embed.

        Used by tests and by the rule-count model: the embedder is the
        first switch whose next-hop link pins the path.
        """
        paths = self.network.shortest_paths(src, dst)
        if not paths:
            return None
        path = paths[0]
        for here, nxt in zip(path[1:], path[2:]):
            if here not in self.network.switches:
                continue
            link = self.network.link_between(here, nxt)
            if self.pins_path(src, dst, link):
                return here
        return None
