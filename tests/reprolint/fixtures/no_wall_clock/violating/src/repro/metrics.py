"""Non-strict fixture: an undeclared measurement site."""

from time import perf_counter


def measure() -> float:
    return perf_counter()
