"""The :class:`FaultPlan` composer: N faults, independent schedules,
one simulation.

A plan is an ordered bag of :class:`~repro.faults.base.Fault`
instances.  ``schedule()`` registers every fault's inject/heal events
with the simulator in one pass, after validating the composition;
afterwards the plan is the scenario's window into fault state —
which faults became active, which healed, which never fired because
their start time lay beyond the run window (the
"fault scheduled after diagnosis starts" case: it stays ``pending``
and is reported as such rather than silently vanishing).

Composition rules:

* Any number of faults may coexist, including several on the same
  switch or link — each fault saves and restores exactly the hooks it
  touched (e.g. :class:`~repro.faults.drop.SilentDropFault` chains an
  existing ``drop_filter`` rather than clobbering it), and heals
  compose in any order, not just LIFO: a drop closure healed from the
  middle of a chain deactivates in place, clock skew unwinds by the
  delta it applied, and a hash heal never clobbers a hook some other
  fault stacked on top.
* ``stop <= start`` on any fault (heal-before-inject) is rejected at
  construction, and :meth:`schedule` re-checks so a mutated plan
  cannot sneak one in.
* A plan schedules once; re-scheduling is an error (the underlying
  simulator events cannot be deduplicated).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from .base import (
    ACTIVE,
    ACTIVE_DURING_DIAGNOSIS,
    FAULTS,
    Fault,
    FaultContext,
    FaultError,
    HEALED,
    PENDING,
)


class FaultPlan:
    """A composition of faults injected into one simulation."""

    def __init__(self, faults: Optional[list[Fault]] = None):
        self.faults: list[Fault] = list(faults or [])
        self._scheduled = False
        self._diagnosis_start: Optional[float] = None

    # -- composition --------------------------------------------------------

    def add(self, fault: Fault) -> Fault:
        """Append an already-constructed fault instance."""
        if self._scheduled:
            raise FaultError("cannot add faults to an already-scheduled plan")
        self.faults.append(fault)
        return fault

    def add_named(self, name: str, **params: Any) -> Fault:
        """Instantiate ``name`` from the registry and append it."""
        return self.add(FAULTS.create(name, **params))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, ctx: FaultContext) -> None:
        """Register every fault's events with ``ctx.network.sim``."""
        if self._scheduled:
            raise FaultError("fault plan already scheduled")
        for fault in self.faults:
            stop = fault.p["stop"]
            if stop is not None and stop <= fault.p["start"]:
                raise FaultError(
                    f"fault {fault.spec.name!r}: heal scheduled before inject"
                )
        for fault in self.faults:
            fault.schedule(ctx)
        self._scheduled = True

    def finalize(self, ctx: FaultContext) -> None:
        """Stop every fault's internal event process (end of run).

        Idempotent and heal-free: faults stay in whatever state the run
        left them for the diagnosis phase; only their self-scheduling
        machinery (flappers and the like) is shut down, so no fault
        keeps queueing simulator events past the run window.
        """
        for fault in self.faults:
            fault.finalize(ctx)

    # -- state reporting ----------------------------------------------------

    def by_state(self, state: str) -> list[Fault]:
        return [f for f in self.faults if f.state == state]

    @property
    def pending(self) -> list[Fault]:
        """Faults that never injected (start beyond the run window)."""
        return self.by_state(PENDING)

    @property
    def active(self) -> list[Fault]:
        return self.by_state(ACTIVE)

    @property
    def healed(self) -> list[Fault]:
        return self.by_state(HEALED)

    def mark_diagnosis_start(self, now: float) -> None:
        """Record when the diagnosis phase began (simulated seconds).

        From here on, a still-scheduled fault whose injection fires —
        because the online analyzer's RPCs advance simulated time — is
        reported :data:`~repro.faults.base.ACTIVE_DURING_DIAGNOSIS`
        instead of being misfiled as ``pending`` or plain ``active``:
        it raced the query window, and the scenario asserts the verdict
        degraded rather than errored.
        """
        self._diagnosis_start = now

    def raced_diagnosis(self, fault: Fault) -> bool:
        """Did ``fault`` inject after the diagnosis phase began?"""
        return (
            self._diagnosis_start is not None
            and fault.state == ACTIVE
            and fault.injected_at is not None
            and fault.injected_at >= self._diagnosis_start
        )

    def status(self) -> list[str]:
        """One describe() line per fault (scenario measurements)."""
        return [
            fault.describe(
                state=ACTIVE_DURING_DIAGNOSIS
                if self.raced_diagnosis(fault)
                else None
            )
            for fault in self.faults
        ]
