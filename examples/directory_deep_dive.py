#!/usr/bin/env python3
"""Deep dive into the directory service: MPHF, hierarchy, push/pull.

Walks the §4.1 machinery directly — no traffic scenario, just the data
structures — and prints the resource arithmetic of Figs 10/11 for your
own parameters.

Run:  python examples/directory_deep_dive.py [n_hosts] [alpha] [k]
"""

import sys

from repro.core import (HierarchicalPointerStore, HostDirectory,
                        push_bandwidth_bps, recycling_period_ms,
                        total_switch_memory_bytes)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    alpha = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    k = int(sys.argv[3]) if len(sys.argv) > 3 else 3

    print(f"building directory over {n} hosts "
          f"(alpha={alpha} ms, k={k})...")
    hosts = [f"10.{i // 65536}.{(i // 256) % 256}.{i % 256}"
             for i in range(n)]
    directory = HostDirectory(hosts)
    mphf = directory.mphf
    print(f"  MPHF: {mphf.bits_per_key():.2f} bits/key switch-side "
          f"state, minimal+perfect over [0, {mphf.n})")

    # one switch's hierarchy, with pushes captured
    pushes = []
    store = HierarchicalPointerStore(n, alpha=alpha, k=k,
                                     on_push=pushes.append)
    print(f"  hierarchy: {store.total_pointer_sets} pointer sets, "
          f"{store.memory_bits / 8 / 1024:.1f} KiB of pointer bits")
    for level in range(1, k + 1):
        print(f"    level {level}: one set spans "
              f"{store.window_ms(level):.0f} ms"
              + ("" if level == k else f", recycled after "
                 f"{recycling_period_ms(alpha, level):.0f} ms idle"))

    # simulate two top-level windows of updates
    epochs = 2 * alpha ** (k - 1) + 1
    print(f"\nsimulating {epochs} epochs of forwarding "
          f"({epochs * alpha} ms)...")
    for e in range(epochs):
        slot = directory.slot_of(hosts[e % n])
        store.update(e, slot)
    print(f"  pushes to control plane: {len(pushes)} "
          f"(one per alpha^k = {alpha ** k} ms)")
    print(f"  push bandwidth at this n: "
          f"{push_bandwidth_bps(n, alpha, k) / 1e6:.3f} Mbps")
    print(f"  total switch memory (pointers + MPHF): "
          f"{total_switch_memory_bytes(n, alpha, k) / 1e6:.3f} MB")

    # the pull model: who did the switch forward to in the last 3 epochs?
    last = epochs - 1
    slots = store.slots_for_epochs(last - 2, last)
    sample = directory.hosts_of(sorted(slots)[:5])
    print(f"\npull example: epochs {last - 2}..{last} touched "
          f"{len(slots)} hosts; first few: {sample}")
    # older epochs have been recycled at level 1 — but the pushed
    # top-level history (the offline path) still covers them coarsely
    gone = store.slots_for_epochs(3, 5)
    covered = [p for p in pushes if p.epoch_lo <= 5 and 3 <= p.epoch_hi]
    print(f"recycling: level-1 query for epochs 3..5 now returns "
          f"{len(gone)} hosts; the pushed top-level window "
          f"[{covered[0].epoch_lo}, {covered[0].epoch_hi}] still names "
          f"{len(covered[0].slots())} hosts for offline diagnosis")


if __name__ == "__main__":
    main()
