"""Experiment registry: which sweeps become *studies*, at what table.

A sweep is one pass over one grid with one seed; an *experiment* is a
run table — scenario × axes × N repetitions with a distinct seed per
``(point, rep)`` cell — aggregated across repeats into degradation
curves (the run-table methodology of simulation evaluation practice:
independent replications per configuration).  An
:class:`ExperimentSpec` is declared in :mod:`repro.experiment.studies`
with the same registration idiom as scenarios/sweeps/faults:

    register_experiment(ExperimentSpec(
        name="skew-degradation",
        sweep="clock-skew",
        summary="accuracy falling off as skew crosses the ε bound",
        axes={"skew_ms": (0.0, 2.0, 5.0, 8.0, 12.0)},
        reps=5,
        figure=FigureSpec(x_axis="skew_ms", ...),
    ))

Axes name *sweep* axes (which in turn bind scenario knobs), so the
experiment layer adds no new vocabulary: every cell of the run table
executes through the existing sweep machinery and reproduces as a
single run (``cli run <scenario> --seed <run seed> --knob ...``).
The CLI ``experiment`` command, the nightly driver, and the generated
``docs/EXPERIMENTS.md`` catalogue all render these specs — one source
of truth, like the sibling registries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


class ExperimentError(Exception):
    """Raised for registry misuse or invalid experiment parameters."""


@dataclass(frozen=True)
class FigureSpec:
    """How one experiment's degradation curve is rendered.

    ``tools/plot_experiments.py`` turns a committed
    ``ExperimentReport`` into a deterministic SVG figure from this
    metadata; ``x_axis`` must be one of the experiment's run-table
    axes.  ``vline`` marks an analytic boundary on the x axis (the
    ε-asynchrony bound, a coverage threshold) so the rendered curve
    shows *where* the paper's assumption stops holding.
    ``freshness_series`` overlays the per-point mean verdict freshness
    (records ingested network-wide during diagnosis) as a dashed
    secondary curve scaled to its own maximum — the online-diagnosis
    studies chart accuracy *and* staleness cost on one figure.
    ``fpr_series`` overlays the per-point mean sketch-directory
    false-positive rate as a dashed secondary curve on the same [0, 1]
    scale as accuracy — the ``directory-bits`` study charts memory
    against *both* what diagnosis still gets right and how much the
    pointer answers over-approximate.
    """

    x_axis: str
    x_label: str
    title: str
    vline: Optional[float] = None
    vline_label: str = ""
    freshness_series: bool = False
    fpr_series: bool = False


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry metadata for one experiment (a seeded run table).

    Attributes
    ----------
    name:
        The experiment's own registry key.  Defaults to ``sweep``.
    sweep:
        Sweep-registry name whose scenario/axes/expectation every run
        executes through.
    summary:
        One-line description (CLI ``experiment list``, docs catalogue).
    axes:
        Axis → value tuple: the run-table grid.  Axis names must be
        declared by the underlying sweep; the cartesian product of the
        values is the experiment's point set.
    reps:
        Independent repetitions per grid point, each with its own
        derived seed (>= 1; degradation studies want >= 3 so a point
        carries statistical weight, not one coin flip).
    base_knobs:
        Fixed knob overrides applied to every run *after* the sweep's
        own ``base_knobs`` — e.g. unpinning ``deploy_spare`` so the
        fault switch is strippable and accuracy genuinely degrades.
    figure:
        Degradation-figure metadata (:class:`FigureSpec`), or ``None``
        for experiments that only produce tables.
    """

    sweep: str
    summary: str
    axes: dict[str, tuple[Any, ...]]
    reps: int = 5
    base_knobs: dict[str, Any] = field(default_factory=dict)
    figure: Optional[FigureSpec] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name is None:
            # frozen dataclass: assign through object.__setattr__
            object.__setattr__(self, "name", self.sweep)

    @property
    def cli_example(self) -> str:
        return f"python -m repro.cli experiment run {self.name}"


def _load_declarations() -> None:
    """Import the studies module, which registers every experiment.

    Deferred to first lookup — never module scope — so importing this
    module alone (tools, tests) does not force the scenario packages
    the sweep registry pulls in behind every registration.
    """
    from . import studies  # noqa: F401


class ExperimentRegistry:
    """Experiment name → experiment-spec registry."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        if spec.name in self._specs:
            raise ExperimentError(f"duplicate experiment name {spec.name!r}")
        if not spec.axes:
            raise ExperimentError(
                f"experiment {spec.name!r} needs at least one run-table axis"
            )
        for axis, values in spec.axes.items():
            if not values:
                raise ExperimentError(
                    f"experiment {spec.name!r}: axis {axis!r} has no values"
                )
        if spec.reps < 1:
            raise ExperimentError(
                f"experiment {spec.name!r}: reps must be >= 1, got {spec.reps}"
            )
        self._validate_against_sweep(spec)
        self._specs[spec.name] = spec
        return spec

    @staticmethod
    def _validate_against_sweep(spec: ExperimentSpec) -> None:
        """Every table axis (and the figure's x axis) must exist on the
        underlying sweep, and ``base_knobs`` must not silently override
        a swept axis — the same fail-before-any-run-burns-time posture
        as the sweep registry."""
        # call-time import: pulling the sweep registry loads the
        # scenario packages, which this module must not force at import
        from ..sweep import SWEEPS, SweepError

        try:
            sweep = SWEEPS.get(spec.sweep)
        except SweepError as exc:
            raise ExperimentError(
                f"experiment {spec.name!r}: {exc}"
            ) from None
        for axis in spec.axes:
            if axis not in sweep.axes:
                raise ExperimentError(
                    f"experiment {spec.name!r}: axis {axis!r} is not an "
                    f"axis of sweep {spec.sweep!r}; valid: "
                    f"{', '.join(sorted(sweep.axes))}"
                )
        swept = {sweep.axes[axis] for axis in spec.axes}
        clash = swept & set(spec.base_knobs)
        if clash:
            raise ExperimentError(
                f"experiment {spec.name!r}: base_knobs would override "
                f"swept axis knob(s) {sorted(clash)}"
            )
        if spec.figure is not None and spec.figure.x_axis not in spec.axes:
            raise ExperimentError(
                f"experiment {spec.name!r}: figure x_axis "
                f"{spec.figure.x_axis!r} is not a run-table axis"
            )

    def get(self, name: str) -> ExperimentSpec:
        _load_declarations()
        try:
            return self._specs[name]
        except KeyError:
            raise ExperimentError(
                f"no experiment registered for {name!r}; "
                f"known: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        _load_declarations()
        return sorted(self._specs)

    def specs(self) -> list[ExperimentSpec]:
        return [self._specs[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        _load_declarations()
        return name in self._specs

    def __len__(self) -> int:
        _load_declarations()
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The process-wide registry ``studies.py`` registers experiments into.
EXPERIMENTS = ExperimentRegistry()
register_experiment = EXPERIMENTS.register
