"""Constants, queue factories, topology helpers, and the background
traffic-population plumbing shared by the scenario modules."""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.rng import run_stream
from ..faults import parse_spare
from ..simnet.device import _flow_hash
from ..simnet.packet import PROTO_UDP, FlowKey
from ..simnet.queues import DropTailFIFO, StrictPriorityQueue
from ..simnet.topology import Network
from ..simnet.workload import (BackgroundTraffic, WorkloadGenerator,
                               WorkloadSpec)
from .base import Knob, Scenario

#: Pica8-class deep shared buffer (the paper's testbed switch family has
#: multi-MB packet memory; a shallow buffer would clip the starvation
#: episodes that Fig 2 shows at m = 8, 16).
DEEP_BUFFER_BYTES = 4 * 1024 * 1024
GBPS = 1e9


def priority_queue() -> StrictPriorityQueue:
    return StrictPriorityQueue(levels=3, capacity_bytes=DEEP_BUFFER_BYTES)


def fifo_queue() -> DropTailFIFO:
    return DropTailFIFO(capacity_bytes=DEEP_BUFFER_BYTES)


def build_diamond(n_pairs: int, *, trunk_bps: float,
                  host_bps: float) -> Network:
    """S1—{SPA,SPB}—S2 with ``n_pairs`` tx/rx host pairs.

    The two-spine diamond shared by the load-imbalance and link-flap
    scenarios; only the link rates differ between them.  ECMP candidate
    order at S1/S2 follows link creation order: SPA first, then SPB.
    """
    net = Network()
    s1 = net.add_switch("S1")
    spine_a = net.add_switch("SPA")
    spine_b = net.add_switch("SPB")
    s2 = net.add_switch("S2")
    for spine in (spine_a, spine_b):
        net.connect(s1, spine, rate_bps=trunk_bps,
                    queue_factory=fifo_queue)
        net.connect(spine, s2, rate_bps=trunk_bps,
                    queue_factory=fifo_queue)
    for i in range(n_pairs):
        tx = net.add_host(f"tx{i}")
        rx = net.add_host(f"rx{i}")
        net.connect(tx, s1, rate_bps=host_bps, queue_factory=fifo_queue)
        net.connect(rx, s2, rate_bps=host_bps, queue_factory=fifo_queue)
    net.compute_routes()
    return net


def sport_for_side(src: str, dst: str, side: int, *, start: int,
                   n_sides: int = 2, proto: int = PROTO_UDP,
                   dport: Optional[int] = None) -> int:
    """First source port ≥ ``start`` whose healthy 5-tuple hash picks
    ECMP candidate ``side``.

    The scenarios that need a provable baseline split (link-flap,
    polarization, multi-fault) all pin flows to spines by scanning
    source ports against the healthy hash; this is the one copy of
    that invariant.  ``dport`` defaults to mirroring the source port
    (the UDP convention here); TCP callers pass their fixed one.
    """
    sport = start
    while True:
        key = FlowKey(src, dst, sport,
                      sport if dport is None else dport, proto)
        if _flow_hash(key) % n_sides == side:
            return sport
        sport += 1


def background_knobs() -> dict[str, Knob]:
    """The background-population knobs traffic-scale scenarios share.

    ``bg_flows`` is what the sweep ``flows=`` axis binds: the size of
    the synthetic flow population running alongside the scenario's own
    workload (see ``docs/WORKLOADS.md``).
    """
    return {
        "bg_flows": Knob(0, "background workload flows (0 = none; "
                            "the sweep flows= axis)"),
        "bg_mix": Knob("uniform", "background endpoint mix: "
                                  "uniform or zipf"),
        "bg_flow_kb": Knob(4, "mean background flow size "
                              "(KB, bounded Pareto)"),
    }


def directory_knobs() -> dict[str, Knob]:
    """The switch-directory backend knobs pointer-bearing scenarios share.

    Each maps onto a :class:`~repro.deployment.SwitchPointerDeployment`
    constructor argument; the sweep ``dir_bits=`` axis binds
    ``directory_bits`` so nightly runs chart diagnosis accuracy (and the
    pointer false-positive rate) against per-set sketch memory — see
    ``docs/DIRECTORIES.md``.
    """
    return {
        "directory_backend": Knob("auto", "switch directory-set backend: "
                                          "exact, bloom, lsh, or auto"),
        "directory_bits": Knob(0, "sketch bit budget per pointer set "
                                  "(0 = saturating, exact-equivalent)"),
        "directory_hashes": Knob(4, "hash probes per sketch insert"),
    }


def fault_knobs() -> dict[str, Knob]:
    """The ambient-fault knobs fault-capable scenarios share.

    Each knob arms one registered fault (``repro.faults``) on top of
    the scenario's own declared fault — the sweep ``skew_ms=`` and
    ``deploy=`` axes bind here, so nightly runs measure diagnosis
    accuracy under clock skew and partial deployment.
    """
    return {
        "skew_ms": Knob(0.0, "clock-skew fault: max per-device epoch "
                             "clock offset (ms; 0 = synchronized)"),
        "deploy_frac": Knob(1.0, "partial-deployment fault: fraction "
                                 "of switches instrumented (<1.0 "
                                 "strips the rest)"),
        "deploy_spare": Knob("", "switches never stripped by partial "
                                 "deployment (comma-separated; the "
                                 "path-pinning embedder is always "
                                 "spared)"),
        "crash_host": Knob("", "agent-crash fault: host whose agent "
                               "dies mid-run ('' = none)"),
        "crash_at": Knob(0.0, "when the agent crash fires (s)"),
    }


def install_fault_knobs(scenario: Scenario, *,
                        extra_spare: Iterable[str] = ()) -> None:
    """Arm the :func:`fault_knobs` faults a scenario's knobs request.

    Call at the end of ``build()`` (topology and deployment exist, the
    plan is not yet scheduled).  ``extra_spare`` lists switches the
    scenario cannot function without — typically the CherryPick
    embedding hop, without which no host records exist at all — merged
    into the user's ``deploy_spare``.
    """
    p = scenario.p
    if p.get("skew_ms", 0.0) > 0:
        scenario.add_fault("clock-skew", skew_ms=p["skew_ms"],
                           targets="all")
    if p.get("deploy_frac", 1.0) < 1.0:
        spare = list(parse_spare(p.get("deploy_spare", "")))
        spare.extend(s for s in extra_spare if s not in spare)
        scenario.add_fault("partial-deployment", frac=p["deploy_frac"],
                           spare=",".join(spare))
    if p.get("crash_host"):
        scenario.add_fault("agent-crash", host=p["crash_host"],
                           start=p.get("crash_at", 0.0))


def launch_background(network: Network, p: dict, *, duration: float,
                      exclude: Iterable[str] = (),
                      eligible: Optional[Iterable[str]] = None
                      ) -> Optional[BackgroundTraffic]:
    """Start the ``bg_*``-knob flow population (None when 0 flows).

    Flows are planned in batches and driven by one
    :class:`~repro.simnet.workload.BackgroundTraffic` emitter, start
    uniformly over the first half of ``duration``, and avoid the
    ``exclude`` hosts (e.g. incast's victim receiver, so background
    noise cannot fake fan-in culprits).  ``eligible`` restricts the
    pool further (e.g. link-flap keeps the population off the flapping
    trunk entirely — see the scenario's knob help).  The workload seed
    derives from the seeded run stream (:mod:`repro.core.rng`) — a
    sweep point's recorded seed reproduces the exact population.
    """
    n = p["bg_flows"]
    if n <= 0:
        return None
    banned = set(exclude)
    pool = (network.host_names if eligible is None
            else [h for h in eligible])
    hosts = [h for h in pool if h not in banned]
    if len(hosts) < 2:
        raise ValueError("background workload needs >= 2 eligible hosts")
    mean = max(1, p["bg_flow_kb"]) * 1024
    spec = WorkloadSpec(
        n_flows=n, spread_s=duration * 0.5, mix=p["bg_mix"],
        mean_flow_bytes=mean, min_flow_bytes=300,
        max_flow_bytes=max(20 * mean, 300), packet_size=1000,
        flow_rate_bps=2e7, seed=run_stream().randrange(2 ** 31))
    gen = WorkloadGenerator(network, spec, senders=hosts,
                            receivers=hosts)
    return gen.launch()
