"""Constants, queue factories, topology helpers, and the background
traffic-population plumbing shared by the scenario modules."""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..simnet.queues import DropTailFIFO, StrictPriorityQueue
from ..simnet.topology import Network
from ..simnet.workload import (BackgroundTraffic, WorkloadGenerator,
                               WorkloadSpec)
from .base import Knob

#: Pica8-class deep shared buffer (the paper's testbed switch family has
#: multi-MB packet memory; a shallow buffer would clip the starvation
#: episodes that Fig 2 shows at m = 8, 16).
DEEP_BUFFER_BYTES = 4 * 1024 * 1024
GBPS = 1e9


def priority_queue() -> StrictPriorityQueue:
    return StrictPriorityQueue(levels=3, capacity_bytes=DEEP_BUFFER_BYTES)


def fifo_queue() -> DropTailFIFO:
    return DropTailFIFO(capacity_bytes=DEEP_BUFFER_BYTES)


def build_diamond(n_pairs: int, *, trunk_bps: float,
                  host_bps: float) -> Network:
    """S1—{SPA,SPB}—S2 with ``n_pairs`` tx/rx host pairs.

    The two-spine diamond shared by the load-imbalance and link-flap
    scenarios; only the link rates differ between them.  ECMP candidate
    order at S1/S2 follows link creation order: SPA first, then SPB.
    """
    net = Network()
    s1 = net.add_switch("S1")
    spine_a = net.add_switch("SPA")
    spine_b = net.add_switch("SPB")
    s2 = net.add_switch("S2")
    for spine in (spine_a, spine_b):
        net.connect(s1, spine, rate_bps=trunk_bps,
                    queue_factory=fifo_queue)
        net.connect(spine, s2, rate_bps=trunk_bps,
                    queue_factory=fifo_queue)
    for i in range(n_pairs):
        tx = net.add_host(f"tx{i}")
        rx = net.add_host(f"rx{i}")
        net.connect(tx, s1, rate_bps=host_bps, queue_factory=fifo_queue)
        net.connect(rx, s2, rate_bps=host_bps, queue_factory=fifo_queue)
    net.compute_routes()
    return net


def background_knobs() -> dict[str, Knob]:
    """The background-population knobs traffic-scale scenarios share.

    ``bg_flows`` is what the sweep ``flows=`` axis binds: the size of
    the synthetic flow population running alongside the scenario's own
    workload (see ``docs/WORKLOADS.md``).
    """
    return {
        "bg_flows": Knob(0, "background workload flows (0 = none; "
                            "the sweep flows= axis)"),
        "bg_mix": Knob("uniform", "background endpoint mix: "
                                  "uniform or zipf"),
        "bg_flow_kb": Knob(4, "mean background flow size "
                              "(KB, bounded Pareto)"),
    }


def launch_background(network: Network, p: dict, *, duration: float,
                      exclude: Iterable[str] = ()
                      ) -> Optional[BackgroundTraffic]:
    """Start the ``bg_*``-knob flow population (None when 0 flows).

    Flows are planned in batches and driven by one
    :class:`~repro.simnet.workload.BackgroundTraffic` emitter, start
    uniformly over the first half of ``duration``, and avoid the
    ``exclude`` hosts (e.g. incast's victim receiver, so background
    noise cannot fake fan-in culprits).  The workload seed derives from
    the process RNG — a sweep point's recorded seed reproduces the
    exact population.
    """
    n = p["bg_flows"]
    if n <= 0:
        return None
    banned = set(exclude)
    hosts = [h for h in network.host_names if h not in banned]
    if len(hosts) < 2:
        raise ValueError("background workload needs >= 2 eligible hosts")
    mean = max(1, p["bg_flow_kb"]) * 1024
    spec = WorkloadSpec(
        n_flows=n, spread_s=duration * 0.5, mix=p["bg_mix"],
        mean_flow_bytes=mean, min_flow_bytes=300,
        max_flow_bytes=max(20 * mean, 300), packet_size=1000,
        flow_rate_bps=2e7, seed=random.randrange(2 ** 31))
    gen = WorkloadGenerator(network, spec, senders=hosts,
                            receivers=hosts)
    return gen.launch()
