"""Multi-fault scenario: every composed fault must be attributed
independently — right problem, right suspect, per site."""

import pytest

from repro.scenarios import ScenarioError, run_scenario


def _summary(result):
    return next((v for v in result.verdicts
                 if v.problem == "multi-fault"), None)


class TestDefaultComposition:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("multi-fault")   # silent-drop+ecmp-polarization

    def test_both_faults_attributed(self, result):
        assert _summary(result) is not None, \
            [(v.problem, v.suspect) for v in result.verdicts]

    def test_gray_failure_pinned_on_site0_leaf(self, result):
        v = result.verdict("gray-failure")
        assert v is not None and v.suspect == "leaf1"

    def test_polarization_pinned_on_a_spine(self, result):
        v = result.verdict("ecmp-polarization")
        assert v is not None and v.imbalanced
        assert v.suspect in ("spine0", "spine1")

    def test_both_faults_really_fired(self, result):
        assert result.measurements["gray_drops"] > 0
        plan = result.measurements["fault_plan"]
        assert len(plan) == 2
        assert all("[active]" in line for line in plan)


class TestOtherCompositions:
    @pytest.mark.parametrize("composition", [
        "silent-drop+link-flap",
        "ecmp-polarization+link-down",
        "silent-drop+silent-drop",
    ])
    def test_pairwise_compositions_attribute(self, composition):
        result = run_scenario("multi-fault", faults=composition,
                              slot_flows=6, duration=0.050)
        assert _summary(result) is not None, \
            [(v.problem, v.suspect) for v in result.verdicts]

    def test_single_fault_composition(self):
        result = run_scenario("multi-fault", faults="silent-drop")
        assert _summary(result) is not None
        assert len(result.verdicts) == 2     # the site verdict + summary

    def test_three_fault_composition(self):
        result = run_scenario(
            "multi-fault", faults="link-down+ecmp-polarization+silent-drop")
        assert _summary(result) is not None
        assert len(result.verdicts) == 4

    def test_link_faults_name_their_site_link(self):
        result = run_scenario("multi-fault",
                              faults="link-flap+link-down")
        suspects = [v.suspect for v in result.verdicts
                    if v.problem == "link-flap"]
        assert suspects == ["leaf0-spine0", "leaf2-spine0"]


class TestValidation:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ScenarioError, match="composable"):
            run_scenario("multi-fault", faults="silent-drop+bit-rot")

    def test_empty_composition_rejected(self):
        with pytest.raises(ScenarioError, match="at least one"):
            run_scenario("multi-fault", faults="+")
