"""End-host flow-record storage (§4.2, §6 prototype description).

The paper's OVS module keeps, per flow: the 5-tuple, the list of
switchIDs on the path, a series of epoch ranges corresponding to each
switchID, byte/packet counts, and a DSCP value as flow priority —
"initially maintained in memory and flushed to a local storage,
implemented using MongoDB".  We reproduce the same record schema with an
in-memory table plus a JSON-lines spill file standing in for MongoDB
(the storage backend is irrelevant to system behaviour; see DESIGN.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from ..core.epoch import EpochRange
from ..simnet.packet import FlowKey


@dataclass
class FlowRecord:
    """Telemetry accumulated for one flow at its destination host.

    ``epoch_ranges`` maps switchID → the union of per-packet epoch
    ranges at that switch; ``bytes_by_epoch`` counts payload bytes per
    *observed* (embedding-switch) epochID — the "<switchID, a list of
    epochIDs, a list of byte counts per epoch>" tuples of §5.1 are
    assembled from these two.
    """

    flow: FlowKey
    switch_path: list[str] = field(default_factory=list)
    epoch_ranges: dict[str, EpochRange] = field(default_factory=dict)
    bytes_by_epoch: dict[int, int] = field(default_factory=dict)
    packets: int = 0
    bytes: int = 0
    priority: int = 0
    first_seen: Optional[float] = None
    last_seen: Optional[float] = None

    def observe(self, *, nbytes: int, t: float, priority: int,
                switch_path: list[str],
                ranges: dict[str, EpochRange],
                observed_epoch: Optional[int]) -> None:
        """Fold one decoded packet into the record."""
        self.packets += 1
        self.bytes += nbytes
        self.priority = priority
        if self.first_seen is None:
            self.first_seen = t
        self.last_seen = t
        if switch_path:
            self.switch_path = list(switch_path)
        for sw, rng in ranges.items():
            prev = self.epoch_ranges.get(sw)
            self.epoch_ranges[sw] = rng if prev is None else prev.union(rng)
        if observed_epoch is not None:
            self.bytes_by_epoch[observed_epoch] = (
                self.bytes_by_epoch.get(observed_epoch, 0) + nbytes)

    def epochs_at(self, switch: str) -> Optional[EpochRange]:
        return self.epoch_ranges.get(switch)

    def traversed(self, switch: str) -> bool:
        return switch in self.epoch_ranges

    # -- (de)serialization for the disk spill --------------------------------

    def to_json(self) -> dict:
        return {
            "flow": list(self.flow),
            "switch_path": self.switch_path,
            "epoch_ranges": {sw: [r.lo, r.hi]
                             for sw, r in self.epoch_ranges.items()},
            "bytes_by_epoch": {str(e): b
                               for e, b in self.bytes_by_epoch.items()},
            "packets": self.packets,
            "bytes": self.bytes,
            "priority": self.priority,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FlowRecord":
        rec = cls(flow=FlowKey(*doc["flow"]))
        rec.switch_path = list(doc["switch_path"])
        rec.epoch_ranges = {sw: EpochRange(lo, hi)
                            for sw, (lo, hi) in doc["epoch_ranges"].items()}
        rec.bytes_by_epoch = {int(e): b
                              for e, b in doc["bytes_by_epoch"].items()}
        rec.packets = doc["packets"]
        rec.bytes = doc["bytes"]
        rec.priority = doc["priority"]
        rec.first_seen = doc["first_seen"]
        rec.last_seen = doc["last_seen"]
        return rec


class FlowRecordStore:
    """Per-host table of :class:`FlowRecord`, with optional disk spill.

    ``max_records`` bounds the in-memory table the way the paper's OVS
    module does ("initially maintained in memory and flushed to a local
    storage"): when the bound is exceeded, the stalest records (by
    ``last_seen``) are spilled to disk (or dropped if no spill path is
    configured) until the table is back under the bound.
    """

    def __init__(self, host_name: str,
                 spill_path: Optional[Path] = None,
                 max_records: Optional[int] = None):
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.host_name = host_name
        self.spill_path = Path(spill_path) if spill_path else None
        self.max_records = max_records
        self._records: dict[FlowKey, FlowRecord] = {}
        self.spilled = 0
        self.evicted = 0

    def record_for(self, flow: FlowKey) -> FlowRecord:
        rec = self._records.get(flow)
        if rec is None:
            rec = FlowRecord(flow=flow)
            self._records[flow] = rec
            if (self.max_records is not None
                    and len(self._records) > self.max_records):
                self._evict()
        return rec

    def _evict(self) -> None:
        """Spill/drop stalest records until under the memory bound."""
        assert self.max_records is not None
        # a record with no observation yet is the one being created
        # right now — never the eviction victim
        by_staleness = sorted(
            self._records.values(),
            key=lambda r: (r.last_seen if r.last_seen is not None
                           else float("inf")))
        excess = len(self._records) - self.max_records
        victims = by_staleness[:excess]
        if self.spill_path is not None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            with self.spill_path.open("a", encoding="utf-8") as fh:
                for rec in victims:
                    fh.write(json.dumps(rec.to_json()) + "\n")
                    self.spilled += 1
        for rec in victims:
            del self._records[rec.flow]
            self.evicted += 1

    def get(self, flow: FlowKey) -> Optional[FlowRecord]:
        return self._records.get(flow)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._records.values())

    def flows_through(self, switch: str,
                      epochs: Optional[EpochRange] = None
                      ) -> list[FlowRecord]:
        """Records whose path crossed ``switch`` (in ``epochs``, if given).

        This is the header-filtering primitive of §3: "filter the headers
        for packets that match a (switchID, epochID) pair".
        """
        out = []
        for rec in self._records.values():
            rng = rec.epochs_at(switch)
            if rng is None:
                continue
            if epochs is not None and not rng.intersects(epochs):
                continue
            out.append(rec)
        return out

    # -- MongoDB-substitute spill --------------------------------------------

    def flush_to_disk(self) -> int:
        """Append all in-memory records to the JSON-lines spill file."""
        if self.spill_path is None:
            raise RuntimeError("no spill path configured")
        self.spill_path.parent.mkdir(parents=True, exist_ok=True)
        with self.spill_path.open("a", encoding="utf-8") as fh:
            for rec in self._records.values():
                fh.write(json.dumps(rec.to_json()) + "\n")
                self.spilled += 1
        return self.spilled

    @classmethod
    def load_from_disk(cls, host_name: str,
                       spill_path: Path) -> "FlowRecordStore":
        store = cls(host_name, spill_path=spill_path)
        with Path(spill_path).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = FlowRecord.from_json(json.loads(line))
                store._records[rec.flow] = rec
        return store
