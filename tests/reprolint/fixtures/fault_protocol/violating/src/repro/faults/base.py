"""Fixture stand-in for the fault protocol base."""

from typing import Any


class Fault:
    def inject(self, ctx: Any) -> None:
        raise NotImplementedError

    def heal(self, ctx: Any) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return "fault"


def register_fault(cls: type) -> type:
    return cls
