"""Packet trace capture and replay.

The paper's Fig 9 methodology replays a canned trace ("we generate 100K
packets, each of which has a unique destination IP; we play those 100K
packets repeatedly").  This module provides the equivalent:

* :class:`TraceCapture` — a tap (host sniffer or switch pipeline hook)
  that records packets to an in-memory trace, spillable to JSON lines;
* :class:`TraceReplayer` — re-injects a trace into a (possibly
  different) network at original or scaled timing;
* :func:`synthesize_unique_dest_trace` — the Fig 9 workload itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from .host import Host
from .packet import FlowKey, Packet, make_udp
from .topology import Network


@dataclass(frozen=True)
class TraceRecord:
    """One captured packet: timing + the fields needed to re-send it."""

    t: float
    src: str
    dst: str
    sport: int
    dport: int
    proto: int
    size: int
    priority: int

    @property
    def flow(self) -> FlowKey:
        return FlowKey(self.src, self.dst, self.sport, self.dport,
                       self.proto)

    def to_json(self) -> dict:
        return {"t": self.t, "src": self.src, "dst": self.dst,
                "sport": self.sport, "dport": self.dport,
                "proto": self.proto, "size": self.size,
                "priority": self.priority}

    @classmethod
    def from_json(cls, doc: dict) -> "TraceRecord":
        return cls(**doc)

    @classmethod
    def of_packet(cls, pkt: Packet, t: float) -> "TraceRecord":
        return cls(t=t, src=pkt.flow.src, dst=pkt.flow.dst,
                   sport=pkt.flow.sport, dport=pkt.flow.dport,
                   proto=pkt.flow.proto, size=pkt.size,
                   priority=pkt.priority)


class TraceCapture:
    """Collects :class:`TraceRecord` entries from a tap point."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    # tap adapters — pick whichever the observation point offers
    def host_sniffer(self, host: Host, pkt: Packet, t: float) -> None:
        self.records.append(TraceRecord.of_packet(pkt, t))

    def pipeline_hook(self, sw, pkt, in_iface, out_iface) -> None:
        self.records.append(TraceRecord.of_packet(pkt, sw.sim.now))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def flows(self) -> set[FlowKey]:
        return {r.flow for r in self.records}

    # -- persistence --------------------------------------------------------

    def save(self, path: Path) -> int:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for rec in self.records:
                fh.write(json.dumps(rec.to_json()) + "\n")
        return len(self.records)

    @classmethod
    def load(cls, path: Path) -> "TraceCapture":
        cap = cls()
        with Path(path).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    cap.records.append(TraceRecord.from_json(
                        json.loads(line)))
        return cap


class TraceReplayer:
    """Re-injects a trace into a network from each packet's source host.

    Timing is preserved relative to the first record and can be scaled
    (``speed=2.0`` replays twice as fast).  Records whose source host
    does not exist in the target network are counted and skipped.
    """

    def __init__(self, network: Network, records: list[TraceRecord], *,
                 speed: float = 1.0, start_delay: float = 0.0):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.network = network
        self.records = sorted(records, key=lambda r: r.t)
        self.speed = speed
        self.start_delay = start_delay
        self.injected = 0
        self.skipped = 0

    def schedule(self) -> int:
        """Queue every record onto the simulator; returns count queued."""
        if not self.records:
            return 0
        sim = self.network.sim
        t0 = self.records[0].t
        for rec in self.records:
            host = self.network.hosts.get(rec.src)
            if host is None or rec.dst not in self.network.hosts:
                self.skipped += 1
                continue
            when = sim.now + self.start_delay + (rec.t - t0) / self.speed
            sim.schedule_at(when, self._inject, host, rec)
        return len(self.records) - self.skipped

    def _inject(self, host: Host, rec: TraceRecord) -> None:
        pkt = make_udp(rec.src, rec.dst, rec.sport, rec.dport, rec.size,
                       priority=rec.priority)
        pkt.flow = FlowKey(rec.src, rec.dst, rec.sport, rec.dport,
                           rec.proto)
        host.send(pkt)
        self.injected += 1


def synthesize_unique_dest_trace(n_packets: int, *, src: str = "tx",
                                 dst_prefix: str = "10.0",
                                 size: int = 256,
                                 interval: float = 1e-6
                                 ) -> list[TraceRecord]:
    """The Fig 9 workload: ``n_packets``, each to a unique destination."""
    if n_packets < 1:
        raise ValueError("need at least one packet")
    out = []
    for i in range(n_packets):
        dst = f"{dst_prefix}.{i // 256}.{i % 256}"
        out.append(TraceRecord(t=i * interval, src=src, dst=dst,
                               sport=1, dport=9, proto=17, size=size,
                               priority=0))
    return out
