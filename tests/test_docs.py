"""Docs health: the generated catalogue is in sync with the registry,
and intra-repo markdown links resolve (same checks CI's docs job runs)."""

import subprocess
import sys
from pathlib import Path

from repro.experiment import EXPERIMENTS, experiments_markdown
from repro.faults import FAULTS, faults_markdown
from repro.scenarios import REGISTRY, catalog_markdown
from repro.sweep import SWEEPS, sweeps_markdown

REPO = Path(__file__).resolve().parent.parent


class TestScenarioCatalog:
    def test_scenarios_md_matches_registry(self):
        """docs/SCENARIOS.md must be regenerated when the registry
        changes (python tools/gen_scenario_docs.py)."""
        page = (REPO / "docs" / "SCENARIOS.md").read_text(encoding="utf-8")
        assert page == catalog_markdown()

    def test_every_scenario_documented(self):
        page = (REPO / "docs" / "SCENARIOS.md").read_text(encoding="utf-8")
        for spec in REGISTRY.specs():
            assert f"## `{spec.name}`" in page
            assert spec.summary in page
            for knob in spec.knobs:
                assert f"`{knob}`" in page


class TestFaultCatalog:
    def test_faults_md_matches_registry(self):
        """docs/FAULTS.md must be regenerated when the fault registry
        changes (python tools/gen_fault_docs.py)."""
        page = (REPO / "docs" / "FAULTS.md").read_text(encoding="utf-8")
        assert page == faults_markdown()

    def test_every_fault_documented(self):
        page = (REPO / "docs" / "FAULTS.md").read_text(encoding="utf-8")
        for spec in FAULTS.specs():
            assert f"## `{spec.name}`" in page
            assert spec.summary in page
            for param in spec.params:
                assert f"`{param}`" in page

    def test_page_documents_protocol_and_shared_params(self):
        page = (REPO / "docs" / "FAULTS.md").read_text(encoding="utf-8")
        assert "schedule → inject → heal → describe" in page
        assert "`start`" in page and "`stop`" in page
        assert "faults list" in page
        assert "FaultPlan" in page

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_fault_docs.py"),
             "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_readme_links_faults_doc(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/FAULTS.md" in readme

    def test_architecture_covers_the_fault_layer(self):
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        for anchor in ("repro/faults", "FaultPlan", "FAULTS.md",
                       "pending → active → healed"):
            assert anchor in arch

    def test_scenarios_page_names_declared_faults(self):
        page = (REPO / "docs" / "SCENARIOS.md").read_text(
            encoding="utf-8")
        assert "Injects (fault registry" in page


class TestSweepCatalog:
    def test_sweeps_md_matches_registry(self):
        """docs/SWEEPS.md must be regenerated when the sweep registry
        changes (python tools/gen_sweep_docs.py)."""
        page = (REPO / "docs" / "SWEEPS.md").read_text(encoding="utf-8")
        assert page == sweeps_markdown()

    def test_every_sweep_documented(self):
        page = (REPO / "docs" / "SWEEPS.md").read_text(encoding="utf-8")
        for spec in SWEEPS.specs():
            assert f"## `{spec.name}`" in page
            assert spec.summary in page
            for axis in spec.axes:
                assert f"`{axis}`" in page

    def test_page_documents_grids_and_nightly_driver(self):
        page = (REPO / "docs" / "SWEEPS.md").read_text(encoding="utf-8")
        assert "sweep nightly" in page
        assert "| axis | binds knob | default grid | nightly grid |" in page
        for spec in SWEEPS.specs():
            for axis, values in spec.default_grid.items():
                assert ",".join(str(v) for v in values) in page
        # the traffic axis and its per-point report fields
        assert "`flows`" in page
        assert "`flow_count`" in page
        assert "`ingest_records_per_s`" in page
        assert "WORKLOADS.md" in page
        # the combined top-end point and its wall-time budget note
        assert "`hosts=4096 flows=2000`" in page
        assert "**Wall-time budget:**" in page

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_sweep_docs.py"),
             "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_readme_links_sweeps_doc(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/SWEEPS.md" in readme


class TestExperimentCatalog:
    def test_experiments_md_matches_registry(self):
        """docs/EXPERIMENTS.md must be regenerated when the experiment
        registry changes (python tools/gen_experiment_docs.py)."""
        page = (REPO / "docs" / "EXPERIMENTS.md").read_text(
            encoding="utf-8")
        assert page == experiments_markdown()

    def test_every_experiment_documented(self):
        page = (REPO / "docs" / "EXPERIMENTS.md").read_text(
            encoding="utf-8")
        for spec in EXPERIMENTS.specs():
            assert f"## `{spec.name}`" in page
            assert spec.summary in page
            for axis in spec.axes:
                assert f"`{axis}`" in page

    def test_page_documents_the_run_table_contract(self):
        page = (REPO / "docs" / "EXPERIMENTS.md").read_text(
            encoding="utf-8")
        assert "experiment nightly" in page
        assert "byte-identical" in page
        assert "manifest.json" in page
        assert "pending" in page
        assert "switchpointer.experiment-report/v2" in page

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable,
             str(REPO / "tools" / "gen_experiment_docs.py"), "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_committed_figures_match_committed_reports(self):
        """results/figures/*.svg must be regenerated when a committed
        report changes (python tools/plot_experiments.py)."""
        proc = subprocess.run(
            [sys.executable,
             str(REPO / "tools" / "plot_experiments.py"), "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_every_figure_spec_has_a_committed_figure(self):
        for spec in EXPERIMENTS.specs():
            if spec.figure is None:
                continue
            path = REPO / "results" / "figures" / f"{spec.name}.svg"
            assert path.exists(), path
            svg = path.read_text(encoding="utf-8")
            assert spec.figure.title in svg

    def test_linked_from_readme_and_architecture(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/EXPERIMENTS.md" in readme
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        assert "EXPERIMENTS.md" in arch


class TestWorkloadsPage:
    def test_exists_and_covers_the_model(self):
        page = (REPO / "docs" / "WORKLOADS.md").read_text(
            encoding="utf-8")
        for anchor in ("WorkloadSpec", "zipf", "bounded-Pareto",
                       "bg_flows", "BackgroundTraffic", "plan_naive",
                       "flows="):
            assert anchor in page

    def test_linked_from_readme_and_architecture(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/WORKLOADS.md" in readme
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        assert "WORKLOADS.md" in arch


class TestDiagnosisPage:
    README_KNOBS = {"rpc_latency_ms": 2, "overrun_ms": 250, "n_flows": 2,
                    "crash_host": "h4_0", "crash_at": 0.1}

    def test_exists_and_covers_the_model(self):
        page = (REPO / "docs" / "DIAGNOSIS.md").read_text(encoding="utf-8")
        for anchor in ("DiagnosisSession", "since_seq", "complete",
                       "degraded", "stale", "missing_hosts",
                       "diagnosis_latency_sim", "freshness",
                       "timeout_retry_cost", "rpc_latency_ms",
                       "stale_after_ms", "overrun_ms",
                       "active-during-diagnosis", "with_extra",
                       "rpc-latency-degradation"):
            assert anchor in page

    def test_linked_from_readme_architecture_and_catalog(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/DIAGNOSIS.md" in readme
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        assert "DIAGNOSIS.md" in arch
        scenarios = (REPO / "docs" / "SCENARIOS.md").read_text(
            encoding="utf-8")
        assert "DIAGNOSIS.md" in scenarios

    def test_readme_example_knobs_are_verbatim(self):
        """The README online-diagnosis example must carry exactly the
        knobs the sync test below executes."""
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for knob, value in self.README_KNOBS.items():
            assert f"--knob {knob}={value}" in readme
        assert "--knob rpc_latency_ms=0" in readme

    def test_readme_example_output_is_real(self):
        """Executing the README example reproduces the output it
        claims: degraded + missing h4_0 + suspect S3 at 2 ms of extra
        RPC latency, complete at 0 ms."""
        cls = REGISTRY.get("gray-failure")

        degraded = cls(**self.README_KNOBS).execute()
        summary = "\n".join(degraded.summary_lines())
        assert "[degraded missing_hosts=h4_0]" in summary
        assert "[suspect: S3]" in summary

        knobs = dict(self.README_KNOBS, rpc_latency_ms=0)
        complete = cls(**knobs).execute()
        assert all(v.status == "complete" for v in complete.verdicts)
        assert any(v.suspect == "S3" for v in complete.verdicts)


class TestBenchmarksPage:
    def test_benchmarks_md_matches_baselines(self):
        """docs/BENCHMARKS.md must be regenerated when the committed
        baselines change (python tools/gen_bench_docs.py)."""
        sys.path.insert(0, str(REPO / "tools"))
        try:
            from gen_bench_docs import benchmarks_markdown
        finally:
            sys.path.pop(0)
        page = (REPO / "docs" / "BENCHMARKS.md").read_text(
            encoding="utf-8")
        assert page == benchmarks_markdown()

    def test_every_baseline_documented(self):
        page = (REPO / "docs" / "BENCHMARKS.md").read_text(
            encoding="utf-8")
        baselines = sorted(
            (REPO / "benchmarks" / "baselines").glob("*.json"))
        assert baselines
        import json

        for path in baselines:
            doc = json.loads(path.read_text(encoding="utf-8"))
            assert f"## `{path.stem}`" in page
            for metric in doc["metrics"]:
                assert f"`{metric}`" in page

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_bench_docs.py"),
             "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_readme_links_benchmarks_doc(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/BENCHMARKS.md" in readme


class TestLintingPage:
    def test_linting_md_matches_rule_registry(self):
        """docs/LINTING.md must be regenerated when the rule registry
        changes (python tools/gen_lint_docs.py)."""
        from tools.reprolint.catalog import rules_markdown

        page = (REPO / "docs" / "LINTING.md").read_text(encoding="utf-8")
        assert page == rules_markdown()

    def test_every_rule_documented(self):
        from tools.reprolint import RULES
        from tools.reprolint import rules  # noqa: F401

        page = (REPO / "docs" / "LINTING.md").read_text(encoding="utf-8")
        for spec in RULES.specs():
            assert f"### `{spec.name}`" in page
            assert spec.summary in page

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_lint_docs.py"),
             "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_linked_from_readme_and_architecture(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/LINTING.md" in readme
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        assert "LINTING.md" in arch


class TestDocsDriver:
    def test_check_docs_runs_clean(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docs.py")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_driver_covers_every_generator(self):
        """A new gen_*_docs.py script must join the driver registry."""
        sys.path.insert(0, str(REPO))
        try:
            from tools.check_docs import CHECKS
        finally:
            sys.path.pop(0)
        driven = {args[0] for _, args in CHECKS}
        generators = {
            f"tools/{p.name}" for p in (REPO / "tools").glob("gen_*_docs.py")
        }
        assert generators <= driven
        assert "tools/check_links.py" in driven


class TestArchitecturePage:
    def test_exists_and_mentions_layers(self):
        page = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        for anchor in ("switchd", "hostd", "analyzer", "scenario registry",
                       "src/repro/scenarios/"):
            assert anchor in page

    def test_readme_links_both_docs(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SCENARIOS.md" in readme


class TestLinkChecker:
    def test_intra_repo_links_resolve(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_links.py")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_checker_catches_broken_link(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md)", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_links.py"),
             str(bad)],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert "no/such/file.md" in proc.stdout

    def test_generator_check_mode_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_scenario_docs.py"),
             "--check"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
