"""Simplified TCP Reno.

The paper's victim flows are TCP; their observable symptoms — throughput
collapse, inflated inter-packet gaps, retransmission timeouts — come from
the congestion-control reaction to queueing and loss, so that is what this
model keeps:

* slow start / congestion avoidance (AIMD),
* triple-duplicate-ACK fast retransmit,
* retransmission timeout with exponential backoff and cwnd reset,
* SRTT/RTTVAR-based RTO (RFC 6298 shape) with a configurable floor.

Omitted on purpose: SACK, window scaling negotiation, Nagle, delayed
ACKs.  None of them change who wins under strict-priority starvation.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import EventHandle, Simulator
from .host import Host
from .packet import (DEFAULT_MSS, PRIO_LOW, PROTO_TCP, FlowKey, Packet,
                     make_tcp)

#: Datacenter-tuned minimum RTO, as in the DCTCP line of work.  The
#: default Linux 200 ms floor would hide every sub-100 ms dynamic the
#: paper plots.
DEFAULT_MIN_RTO = 0.010
DEFAULT_MAX_RTO = 1.0
DEFAULT_INIT_RTO = 0.020


class TcpReceiver:
    """Receive side: cumulative ACKs with out-of-order buffering."""

    def __init__(self, host: Host, port: int, *,
                 on_payload: Optional[Callable[[Packet, float], None]] = None):
        self.host = host
        self.port = port
        self.rcv_next = 0
        self.bytes_received = 0
        self.acks_sent = 0
        self._ooo: dict[int, int] = {}  # seq -> payload length
        self._on_payload = on_payload
        host.bind(PROTO_TCP, port, self._on_segment)

    def _on_segment(self, pkt: Packet, now: float) -> None:
        assert pkt.tcp is not None
        if pkt.tcp.is_ack:
            return  # receivers of data ignore bare ACKs
        seq, length = pkt.tcp.seq, pkt.payload_bytes
        self.bytes_received += length
        if self._on_payload is not None:
            self._on_payload(pkt, now)
        if seq == self.rcv_next:
            self.rcv_next += length
            # absorb any contiguous out-of-order data
            while self.rcv_next in self._ooo:
                self.rcv_next += self._ooo.pop(self.rcv_next)
        elif seq > self.rcv_next:
            self._ooo.setdefault(seq, length)
        self._send_ack(pkt)

    def _send_ack(self, data_pkt: Packet) -> None:
        key = data_pkt.flow
        ack = make_tcp(key.dst, key.src, key.dport, key.sport, payload=0,
                       ack=self.rcv_next, is_ack=True,
                       priority=data_pkt.priority)
        self.acks_sent += 1
        self.host.send(ack)


class TcpSender:
    """Send side: Reno congestion control over the simulated network.

    Parameters
    ----------
    total_bytes:
        Bytes to transfer; ``None`` means run until ``stop()`` (used by
        the fixed-duration flows in Fig 2).
    priority:
        DSCP class for every segment of the flow (and its ACKs).
    """

    def __init__(self, sim: Simulator, host: Host, dst: str, *,
                 sport: int, dport: int, total_bytes: Optional[int] = None,
                 priority: int = PRIO_LOW, mss: int = DEFAULT_MSS,
                 init_cwnd_segments: int = 10,
                 min_rto: float = DEFAULT_MIN_RTO,
                 max_rto: float = DEFAULT_MAX_RTO,
                 on_complete: Optional[Callable[[float], None]] = None):
        self.sim = sim
        self.host = host
        self.flow = FlowKey(host.name, dst, sport, dport, PROTO_TCP)
        self.total_bytes = total_bytes
        self.priority = priority
        self.mss = mss
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.on_complete = on_complete

        self.snd_una = 0          # oldest unacked byte
        self.snd_next = 0         # next new byte to send
        self.cwnd = float(init_cwnd_segments * mss)
        self.ssthresh = float(64 * 1024)
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0
        self._recovery_kind = ""  # "fast" | "timeout"

        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = DEFAULT_INIT_RTO
        self._send_times: dict[int, float] = {}   # seq -> first-send time

        self.retransmits = 0
        self.timeouts = 0
        self.timeout_times: list[float] = []
        self.segments_sent = 0
        self.completed_at: Optional[float] = None
        self._stopped = False
        self._rto_handle: Optional[EventHandle] = None

        host.bind(PROTO_TCP, sport, self._on_ack)

    # -- public ------------------------------------------------------------

    def start(self, delay: float = 0.0) -> None:
        self.sim.schedule(delay, self._pump)

    def stop(self) -> None:
        """Stop sending new data (fixed-duration flows)."""
        self._stopped = True
        self._cancel_rto()

    @property
    def bytes_acked(self) -> int:
        return self.snd_una

    @property
    def done(self) -> bool:
        return (self.total_bytes is not None
                and self.snd_una >= self.total_bytes)

    # -- send path -----------------------------------------------------------

    def _window(self) -> int:
        return int(self.cwnd)

    def _pump(self) -> None:
        """Send as many new segments as the window allows."""
        if self._stopped or self.done:
            return
        while True:
            if self.total_bytes is not None:
                remaining = self.total_bytes - self.snd_next
                if remaining <= 0:
                    break
            else:
                remaining = self.mss
            if self.snd_next - self.snd_una >= self._window():
                break
            payload = min(self.mss, remaining)
            self._transmit(self.snd_next, payload, first_time=True)
            self.snd_next += payload
        if self.snd_next > self.snd_una:
            self._arm_rto()

    def _transmit(self, seq: int, payload: int, *, first_time: bool) -> None:
        key = self.flow
        pkt = make_tcp(key.src, key.dst, key.sport, key.dport,
                       payload=payload, seq=seq, priority=self.priority)
        self.segments_sent += 1
        if first_time:
            self._send_times[seq] = self.sim.now
        else:
            self._send_times.pop(seq, None)  # Karn: no RTT sample on rexmit
            self.retransmits += 1
        self.host.send(pkt)

    # -- receive path (ACKs) ------------------------------------------------

    def _on_ack(self, pkt: Packet, now: float) -> None:
        assert pkt.tcp is not None
        if not pkt.tcp.is_ack:
            return
        ack = pkt.tcp.ack
        if ack > self.snd_una:
            self._rtt_sample(ack, now)
            newly = ack - self.snd_una
            self.snd_una = ack
            self.dupacks = 0
            if self.in_recovery:
                if ack >= self.recover_point:
                    # full recovery: deflate (fast) or keep slow-starting
                    self.in_recovery = False
                    if self._recovery_kind == "fast":
                        self.cwnd = self.ssthresh
                else:
                    # NewReno partial ACK: the next hole is lost too —
                    # retransmit it now instead of waiting for an RTO.
                    if self._recovery_kind == "timeout":
                        if self.cwnd < self.ssthresh:
                            self.cwnd += min(newly, self.mss)
                    self._transmit(self.snd_una,
                                   self._segment_len_at(self.snd_una),
                                   first_time=False)
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd += min(newly, self.mss)  # slow start
                else:
                    self.cwnd += self.mss * self.mss / self.cwnd  # AIMD
            if self.done:
                self._finish(now)
                return
            self._cancel_rto()
            self._pump()
        elif ack == self.snd_una and self.snd_next > self.snd_una:
            self.dupacks += 1
            if self.dupacks == 3 and not self.in_recovery:
                self._fast_retransmit()

    def _rtt_sample(self, ack: int, now: float) -> None:
        # Sample from the oldest segment this ACK covers, if untainted.
        for seq in sorted(self._send_times):
            if seq >= ack:
                break
            sent = self._send_times.pop(seq)
            if self.srtt is None:
                self.srtt = now - sent
                self.rttvar = self.srtt / 2
            else:
                sample = now - sent
                self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt
                                                              - sample)
                self.srtt = 0.875 * self.srtt + 0.125 * sample
        if self.srtt is not None:
            self.rto = min(self.max_rto,
                           max(self.min_rto, self.srtt + 4 * self.rttvar))

    # -- loss recovery -----------------------------------------------------

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(self.cwnd / 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_recovery = True
        self._recovery_kind = "fast"
        self.recover_point = self.snd_next
        payload = self._segment_len_at(self.snd_una)
        self._transmit(self.snd_una, payload, first_time=False)

    def _segment_len_at(self, seq: int) -> int:
        if self.total_bytes is not None:
            return min(self.mss, max(1, self.total_bytes - seq))
        return self.mss

    def _arm_rto(self) -> None:
        if self._rto_handle is None or self._rto_handle.cancelled:
            self._rto_handle = self.sim.schedule(self.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        self._rto_handle = None
        if self._stopped or self.done or self.snd_next <= self.snd_una:
            return
        self.timeouts += 1
        self.timeout_times.append(self.sim.now)
        self.ssthresh = max(self.cwnd / 2, 2 * self.mss)
        self.cwnd = float(self.mss)
        self.dupacks = 0
        # after a timeout, holes before snd_next are resent on partial
        # ACKs (go-back-recovery), not by one RTO each
        self.in_recovery = self.snd_next > self.snd_una
        self._recovery_kind = "timeout"
        self.recover_point = self.snd_next
        self.rto = min(self.max_rto, self.rto * 2)  # exponential backoff
        payload = self._segment_len_at(self.snd_una)
        self._transmit(self.snd_una, payload, first_time=False)
        self._arm_rto()

    def _finish(self, now: float) -> None:
        if self.completed_at is None:
            self.completed_at = now
            self._cancel_rto()
            if self.on_complete is not None:
                self.on_complete(now)


def open_tcp_flow(sim: Simulator, src: Host, dst: Host, *, sport: int,
                  dport: int, total_bytes: Optional[int] = None,
                  priority: int = PRIO_LOW,
                  mss: int = DEFAULT_MSS,
                  min_rto: float = DEFAULT_MIN_RTO,
                  on_payload: Optional[Callable[[Packet, float],
                                                None]] = None,
                  on_complete: Optional[Callable[[float], None]] = None,
                  ) -> tuple[TcpSender, TcpReceiver]:
    """Wire a sender at ``src`` to a receiver at ``dst`` and return both."""
    receiver = TcpReceiver(dst, dport, on_payload=on_payload)
    sender = TcpSender(sim, src, dst.name, sport=sport, dport=dport,
                       total_bytes=total_bytes, priority=priority, mss=mss,
                       min_rto=min_rto, on_complete=on_complete)
    return sender, receiver
