"""Directory-backend registry (the ``directory_backend`` knob).

A switch's per-epoch directory — "which end-host slots did I forward
to?" — is held by one of several interchangeable *directory sets*: the
exact one-bit-per-host bitmap of :class:`~repro.core.pointer.PointerSet`
(the paper's §4.1.1 design and the equivalence reference), a bloom
filter whose bit budget trades memory against a false-positive rate,
and a banded-minhash variant whose signatures additionally answer
"which switches saw traffic *similar* to this one?" (the analyzer's
co-suspect ranking).  All of them expose the same
set/test/union/serialize surface, so which one a deployment uses is a
memory↔accuracy knob, not a code path.

The approximation contract is one-sided: a directory set may report
slots that were never touched (false positives widen the analyzer's
host consultation), but it must **never** drop a slot that was set —
the analyzer's answers stay supersets of the truth, so diagnosis can
degrade but not silently miss evidence.  :func:`register_directory`
probes every backend against that contract at registration time and
rejects any sketch that can lose a true member.

This module is the registry deployments select from:

* :func:`register_directory` — decorator registering a factory under a
  name (``reprolint``'s registry-coverage rule checks every registering
  module is reachable from the package ``__init__``).
* :func:`make_directory_set` — build a set by backend name; ``"auto"``
  picks ``"exact"`` unless a process-wide override is active.
* :func:`use_directory_backend` / :func:`set_default_directory_backend`
  — override what ``"auto"`` resolves to, so a test harness can run
  every scenario on a chosen backend without threading a knob through
  each scenario (the ``hostd.backends`` idiom, one registry up).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Protocol, runtime_checkable


class DirectoryError(Exception):
    """Raised for registry misuse or a backend breaking the contract."""


@runtime_checkable
class DirectorySet(Protocol):
    """The surface every directory backend must implement.

    ``n_slots`` is the MPHF range (one logical slot per end-host);
    ``size_bits`` is the *modeled* switch-memory cost of one set —
    shadow bookkeeping a sketch keeps for measurement (the exact truth
    bitmap behind :meth:`truth_bytes`) is excluded by definition and
    must never influence query answers.
    """

    n_slots: int
    #: registry name of the backend that produced this set
    backend_name: str

    def set_slot(self, slot: int) -> None:
        """Record "forwarded to ``slot``" (the per-packet path)."""
        ...

    def test_slot(self, slot: int) -> bool:
        """Approximate membership: may false-positive, never false-negative."""
        ...

    def clear(self) -> None:
        """Reset for window rotation (lazy recycling)."""
        ...

    def iter_slots(self) -> Iterator[int]:
        """Enumerate the member superset, ascending."""
        ...

    def union_into(self, other: "DirectorySet") -> None:
        """Merge this set into ``other`` (level coalescing)."""
        ...

    def estimate(self) -> int:
        """Estimated member count (exact popcount for the bitmap)."""
        ...

    def to_bytes(self) -> bytes:
        """Serialize the sketch payload (what a push transfers)."""
        ...

    def load(self, blob: bytes) -> None:
        """Deserialize a :meth:`to_bytes` payload into this set."""
        ...

    def truth_bytes(self) -> bytes:
        """Shadow exact bitmap (measurement-only; not in ``size_bits``)."""
        ...

    @property
    def sketch_params(self) -> tuple[int, int]:
        """Resolved ``(bits, hashes)`` parameters (decode identity)."""
        ...

    @property
    def size_bits(self) -> int:
        """Modeled memory cost of this set in bits."""
        ...


#: factory signature: (n_slots, directory_bits, directory_hashes)
DirectoryFactory = Callable[[int, int, int], DirectorySet]

_BACKENDS: dict[str, DirectoryFactory] = {}
_SUMMARIES: dict[str, str] = {}
_MEMORY_NOTES: dict[str, str] = {}
_default_override: Optional[str] = None

#: deterministic probe the registration self-check runs every backend
#: through: a deliberately tight budget (24 bits for 64 slots) so a
#: backend that *can* drop members will
_PROBE_SLOTS = (0, 3, 7, 11, 29, 63)
_PROBE_EXTRA = (1, 29, 42)


def _superset_self_check(name: str, factory: DirectoryFactory) -> None:
    """Reject at registration any sketch that can drop a true member.

    Exercises the paths the hierarchy and the analyzer rely on: direct
    membership, enumeration, union coalescing, and a serialize →
    deserialize round-trip.  A false positive is fine (that is the
    memory trade); a false negative anywhere fails the registration.
    """

    def missing(ds: DirectorySet, members: set[int], where: str) -> None:
        dropped = sorted(
            s for s in members if not ds.test_slot(s)
        ) or sorted(members - set(ds.iter_slots()))
        if dropped:
            raise DirectoryError(
                f"directory backend {name!r} dropped true member(s) "
                f"{dropped} {where} — sketches must answer with "
                f"supersets (no false negatives)"
            )

    probe = factory(64, 24, 2)
    for slot in _PROBE_SLOTS:
        probe.set_slot(slot)
    missing(probe, set(_PROBE_SLOTS), "after insertion")
    target = factory(64, 24, 2)
    for slot in _PROBE_EXTRA:
        target.set_slot(slot)
    probe.union_into(target)
    members = set(_PROBE_SLOTS) | set(_PROBE_EXTRA)
    missing(target, members, "after union_into")
    dup = factory(64, 24, 2)
    dup.load(target.to_bytes())
    missing(dup, members, "after a serialize round-trip")
    if dup.to_bytes() != target.to_bytes():
        raise DirectoryError(
            f"directory backend {name!r} does not round-trip its "
            f"serialized payload"
        )


def register_directory(
    name: str, *, summary: str, memory_note: str
) -> Callable[[DirectoryFactory], DirectoryFactory]:
    """Register a directory-set factory under ``name`` (decorator).

    ``memory_note`` states how the backend spends the ``directory_bits``
    budget (the docs catalogue and ``cli directory list`` render it).
    The factory is probed by :func:`_superset_self_check` before it is
    accepted.
    """

    def deco(factory: DirectoryFactory) -> DirectoryFactory:
        if name in _BACKENDS:
            raise DirectoryError(
                f"directory backend {name!r} already registered"
            )
        _superset_self_check(name, factory)
        _BACKENDS[name] = factory
        _SUMMARIES[name] = summary
        _MEMORY_NOTES[name] = memory_note
        return factory

    return deco


def available_directories() -> tuple[str, ...]:
    """Registered backend names, sorted (``"auto"`` is always valid too)."""
    return tuple(sorted(_BACKENDS))


def directory_summaries() -> dict[str, str]:
    """Name → one-line summary for docs/catalogue generation."""
    return {name: _SUMMARIES[name] for name in available_directories()}


def directory_memory_notes() -> dict[str, str]:
    """Name → how the backend spends the ``directory_bits`` budget."""
    return {name: _MEMORY_NOTES[name] for name in available_directories()}


def default_directory_backend() -> Optional[str]:
    """The active ``"auto"`` override, or None for the exact default."""
    return _default_override


def set_default_directory_backend(name: Optional[str]) -> None:
    """Override what ``"auto"`` resolves to, process-wide.

    ``None`` (or ``"auto"``) restores the exact-bitmap default.
    Deployment construction reads the override at build time, so
    flipping it between runs re-points every switch with no
    per-scenario knob.
    """
    global _default_override
    if name is not None and name != "auto" and name not in _BACKENDS:
        raise DirectoryError(
            f"unknown directory backend {name!r}; "
            f"available: {', '.join(available_directories())}"
        )
    _default_override = None if name == "auto" else name


@contextmanager
def use_directory_backend(name: str) -> Iterator[None]:
    """Scoped :func:`set_default_directory_backend` (equivalence tests)."""
    prev = _default_override
    set_default_directory_backend(name)
    try:
        yield
    finally:
        set_default_directory_backend(prev)


def resolve_directory(backend: str) -> str:
    """Resolve a knob value (possibly ``"auto"``) to a registered name."""
    if backend == "auto":
        return _default_override if _default_override is not None else "exact"
    if backend not in _BACKENDS:
        raise DirectoryError(
            f"unknown directory backend {backend!r}; "
            f"available: {', '.join(available_directories())}"
        )
    return backend


def make_directory_set(
    backend: str, n_slots: int, *, bits: int = 0, hashes: int = 4
) -> DirectorySet:
    """Build one directory set by backend name (``"auto"`` allowed).

    ``bits`` is the per-set memory budget; 0 means "saturating" — the
    backend sizes itself so it is exact-equivalent (one bit per slot),
    which is what makes the default knob values match the exact backend
    bit for bit.
    """
    name = resolve_directory(backend)
    return _BACKENDS[name](n_slots, bits, hashes)


def decode_directory_set(
    backend: str, n_slots: int, blob: bytes, *, bits: int = 0, hashes: int = 4
) -> DirectorySet:
    """Rebuild a set from a serialized payload (the analyzer pull path)."""
    ds = make_directory_set(backend, n_slots, bits=bits, hashes=hashes)
    ds.load(blob)
    return ds


def directory_markdown() -> str:
    """The ``docs/DIRECTORIES.md`` catalogue body (one source of truth)."""
    lines = [
        "# Directory backends",
        "",
        "<!-- generated by tools/gen_directory_docs.py — do not edit; "
        "run `python tools/gen_directory_docs.py` after changing "
        "src/repro/directory/ -->",
        "",
        "A switch's per-epoch directory is held by one of the backends",
        "below (the `directory_backend` deployment knob; `auto` resolves",
        "to `exact` unless a process-wide override is active).  Every",
        "backend is probed at registration to guarantee *superset*",
        "answers: false positives trade memory for accuracy, false",
        "negatives are rejected outright.",
        "",
        "| backend | summary | memory (`directory_bits` budget) |",
        "|---|---|---|",
    ]
    summaries = directory_summaries()
    notes = directory_memory_notes()
    for name in available_directories():
        lines.append(f"| `{name}` | {summaries[name]} | {notes[name]} |")
    lines += [
        "",
        "## Knobs",
        "",
        "| knob | default | meaning |",
        "|---|---|---|",
        "| `directory_backend` | `auto` | backend name above, or `auto` |",
        "| `directory_bits` | `0` | per-set bit budget; 0 = saturating "
        "(exact-equivalent: one bit per host slot) |",
        "| `directory_hashes` | `4` | hash probes per insert (bloom/lsh) |",
        "",
        "## The superset contract",
        "",
        "`Analyzer.hosts_for` surfaces approximate answers as supersets",
        "of the true host set and stamps the verdicts it feeds with an",
        "`approx` evidence label; the measured false-positive rate rides",
        "sweep reports as the `directory_fpr` measurement (see the",
        "`directory-bits` sweep and the `directory-degradation` study).",
        "",
    ]
    return "\n".join(lines)
