"""PathDump baseline (§6.2, Fig 12).

PathDump [OSDI'16] is the end-host system SwitchPointer builds on.  Its
hosts keep the same flow records, but **switches store nothing**: when
the operator asks a switch-scoped question ("top-100 flows through S"),
the analyzer has no directory and "executes the query from all the
servers in the network" — the exact behaviour Fig 12 compares against.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.epoch import EpochRange
from ..hostd.agent import HostAgent
from ..hostd.query import FlowSummary, QueryResult
from ..rpc.fabric import Breakdown, RpcFabric


class PathDumpAnalyzer:
    """Query runner that must contact every server."""

    def __init__(self, host_agents: dict[str, HostAgent],
                 rpc: Optional[RpcFabric] = None):
        self.host_agents = host_agents
        self.rpc = rpc if rpc is not None else RpcFabric()

    @property
    def all_servers(self) -> list[str]:
        return sorted(self.host_agents)

    def fanout(self, query: Callable[[HostAgent], QueryResult]
               ) -> tuple[dict[str, QueryResult], Breakdown]:
        """Run ``query`` on *all* servers — PathDump has no directory."""

        def execute(server: str) -> QueryResult:
            return query(self.host_agents[server])

        return self.rpc.fanout_query(self.all_servers, execute)

    def top_k_flows(self, k: int, *, switch: str,
                    epochs: Optional[EpochRange] = None
                    ) -> tuple[list[FlowSummary], Breakdown]:
        """The Fig 12 query: global top-k flows through one switch."""
        results, bd = self.fanout(
            lambda agent: agent.query.top_k_flows(k, switch=switch,
                                                  epochs=epochs))
        merged: list[FlowSummary] = []
        for res in results.values():
            merged.extend(res.payload)
        merged.sort(key=lambda s: (-s.bytes, s.flow))
        return merged[:k], bd

    def flow_size_distribution(self, *, switch: str,
                               epochs: Optional[EpochRange] = None
                               ) -> tuple[dict[str, list[int]], Breakdown]:
        """§5.4 diagnosis the PathDump way: ask everyone."""
        results, bd = self.fanout(
            lambda agent: agent.query.flow_size_distribution(
                switch=switch, epochs=epochs))
        merged: dict[str, list[int]] = {}
        for res in results.values():
            for egress, sizes in res.payload.items():
                merged.setdefault(egress, []).extend(sizes)
        return merged, bd


def top_k_with_switchpointer(analyzer, k: int, *, switch: str,
                             epochs: EpochRange, level: int = 1
                             ) -> tuple[list[FlowSummary], Breakdown]:
    """The same Fig 12 query via SwitchPointer's directory.

    Contacts only the servers the switch's pointer names — the
    comparison half of Fig 12.  ``analyzer`` is a
    :class:`repro.analyzer.analyzer.Analyzer`.
    """
    bd = Breakdown()
    bd.add("pointer_retrieval", analyzer.rpc.pointer_pull_cost(1))
    servers = analyzer.hosts_for(switch, epochs, level=level)
    results, q_bd = analyzer.consult_hosts(
        servers, lambda agent: agent.query.top_k_flows(k, switch=switch,
                                                       epochs=epochs))
    merged: list[FlowSummary] = []
    for res in results.values():
        merged.extend(res.payload)
    merged.sort(key=lambda s: (-s.bytes, s.flow))
    return merged[:k], bd.merged(q_bd)
