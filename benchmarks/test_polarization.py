"""ECMP polarization — skew detection vs the healthy control.

The same workload runs twice: once with the port-blind hash installed
on leaf0 (every flow of the host pair lands on one spine) and once with
the healthy 5-tuple hash (the build picks source ports that split
4/4).  The census diagnosis must flag exactly the polarized run, and
the path-conformance cross-check must count exactly the flows the bad
hash moved off their healthy spine.
"""

import pytest

from repro.scenarios import PolarizationScenario

from benchmarks.reporting import emit

N_FLOWS = 8


def run_pair():
    return {
        "polarized": PolarizationScenario(n_flows=N_FLOWS).execute(),
        "healthy": PolarizationScenario(n_flows=N_FLOWS,
                                        polarized=False).execute(),
    }


@pytest.mark.benchmark(group="polarization")
def test_polarization_detection(benchmark):
    rows = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    lines = ["run        flagged  suspect   top_share  off_policy  "
             "spine_bytes"]
    data = {}
    for tag, res in rows.items():
        v = res.verdict("ecmp-polarization")
        spine_bytes = res.measurements["spine_tx_bytes"]
        total = sum(spine_bytes.values())
        top_share = max(spine_bytes.values()) / total if total else 0.0
        off_policy = res.measurements["off_policy_flows"]
        lines.append(f"  {tag:9s}  {str(v.imbalanced):7s}  "
                     f"{str(v.suspect):8s}  {top_share:9.2f}  "
                     f"{off_policy:10d}  {spine_bytes}")
        data[tag] = {"flagged": v.imbalanced, "suspect": v.suspect,
                     "top_share": top_share, "off_policy": off_policy,
                     "spine_tx_bytes": spine_bytes}
    lines.append("(expected: polarized flagged with one idle spine; "
                 "healthy unflagged, 0 off-policy)")
    emit("polarization", lines, data=data)

    assert data["polarized"]["flagged"]
    assert data["polarized"]["top_share"] == 1.0
    assert data["polarized"]["off_policy"] == N_FLOWS // 2
    assert not data["healthy"]["flagged"]
    assert data["healthy"]["off_policy"] == 0
    assert data["healthy"]["top_share"] == 0.5
