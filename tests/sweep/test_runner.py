"""Sweep runner: registry resolution, execution, parallel equivalence."""

import pytest

from repro.sweep import (
    SWEEPS,
    GridError,
    Sweep,
    SweepError,
    execute_point,
    point_seed,
)

FAST = {"duration": 0.02, "burst_start": 0.008}


class TestRegistry:
    def test_sweeps_registered_next_to_scenarios(self):
        for name in ("incast", "incast-scale", "gray-failure",
                     "polarization", "link-flap"):
            assert name in SWEEPS
        assert len(SWEEPS) >= 5

    def test_several_sweeps_may_share_a_scenario(self):
        """incast-scale is a second sweep of the incast scenario, along
        the traffic axis instead of the fabric axis."""
        fabric = SWEEPS.get("incast")
        traffic = SWEEPS.get("incast-scale")
        assert fabric.scenario == traffic.scenario == "incast"
        assert fabric.name != traffic.name
        assert traffic.knobs_for({"flows": 2000})["bg_flows"] == 2000

    def test_unknown_sweep_rejected(self):
        with pytest.raises(SweepError, match="no sweep registered"):
            SWEEPS.get("no-such-sweep")

    def test_duplicate_name_rejected(self):
        from repro.sweep.registry import SweepSpec

        with pytest.raises(SweepError, match="duplicate sweep name"):
            SWEEPS.register(SweepSpec(
                scenario="incast", summary="dup", expect_problem="incast",
                axes={"hosts": "hosts"}, default_grid={"hosts": (64,)},
                nightly_grid={"hosts": (64,)}))

    def test_nightly_grid_is_mandatory(self):
        """`sweep nightly` runs every registered spec — a spec it could
        not run would silently shrink the scheduled CI coverage."""
        from repro.sweep.registry import SweepSpec

        with pytest.raises(SweepError, match="nightly grid"):
            SWEEPS.register(SweepSpec(
                scenario="incast", name="incast-no-nightly",
                summary="x", expect_problem="incast",
                axes={"hosts": "hosts"}, default_grid={"hosts": (64,)}))

    def test_axes_resolve_to_knobs(self):
        spec = SWEEPS.get("incast")
        knobs = spec.knobs_for({"hosts": 256, "records": 512})
        assert knobs["hosts"] == 256
        assert knobs["records_per_host"] == 512
        # base knobs ride along on every point
        assert knobs["record_shards"] == 8

    def test_unknown_axis_rejected_before_running(self):
        spec = SWEEPS.get("incast")
        with pytest.raises(GridError, match="unknown axis"):
            Sweep(spec, {"bogus": [1]})

    def test_pinned_knob_may_not_override_swept_axis(self):
        """--knob hosts=32 with --grid hosts=64,256 would run every
        point at 32 while the report claims 64/256 — reject it."""
        spec = SWEEPS.get("incast")
        with pytest.raises(GridError, match="override swept axis"):
            Sweep(spec, {"hosts": [64, 256]},
                  extra_knobs={"hosts": 32})
        # pinning a knob that is not swept stays allowed
        Sweep(spec, {"hosts": [64]}, extra_knobs={"duration": 0.02})


class TestExecution:
    def test_inline_sweep_aggregates_points(self):
        spec = SWEEPS.get("incast")
        sweep = Sweep(
            spec, {"hosts": [64, 128]}, workers=1, extra_knobs=FAST
        )
        report = sweep.run()
        assert [p.params["hosts"] for p in report.points] == [64, 128]
        assert report.all_ok
        assert all(p.problems == ["incast"] for p in report.points)
        assert all(p.peak_records > 0 for p in report.points)
        assert all(p.wall_time_s > 0 for p in report.points)
        assert report.workers == 1

    def test_point_error_is_contained(self):
        spec = SWEEPS.get("incast")
        # n_senders below min_fan_in still runs; a negative duration
        # must error that point without killing the sweep
        sweep = Sweep(
            spec,
            {"hosts": [64]},
            workers=1,
            extra_knobs={"duration": -1.0},
        )
        report = sweep.run()
        assert len(report.points) == 1
        assert report.points[0].error is not None
        assert not report.all_ok

    def test_traffic_axis_populates_flow_metrics(self):
        """flows= drives a background population, and the point records
        how many flows ran and the ingest throughput they produced."""
        spec = SWEEPS.get("incast-scale")
        sweep = Sweep(spec, {"hosts": [64], "flows": [300]}, workers=1,
                      extra_knobs=FAST)
        report = sweep.run()
        point = report.points[0]
        assert point.ok, point.error or point.problems
        assert point.flow_count >= 300
        assert point.ingest_records_per_s > 0
        assert point.measurements["bg_packets_delivered"] > 0
        # more flows -> more records ingested than the bare scenario
        bare = Sweep(spec, {"hosts": [64], "flows": [0]}, workers=1,
                     extra_knobs=FAST).run().points[0]
        assert point.total_records > bare.total_records

    def test_seeds_stable_per_index(self):
        spec = SWEEPS.get("incast")
        sweep = Sweep(spec, {"hosts": [64, 128]}, base_seed=42)
        seeds = [payload[2] for payload in sweep.payloads]
        assert seeds == [point_seed(42, 0), point_seed(42, 1)]

    def test_gray_failure_requires_correct_suspect(self):
        """problem='gray-failure' alone is not enough: the verdict must
        name the injected switch, else localization regressions would
        pass the gate silently."""
        spec = SWEEPS.get("gray-failure")
        sweep = Sweep(spec, {"victims": [2]}, workers=1,
                      extra_knobs={"duration": 0.04})
        assert sweep.payloads[0][4] == "S3"  # default fault_switch
        report = sweep.run()
        assert report.all_ok
        assert "S3" in report.points[0].suspects
        # an expectation that cannot be met flips diagnosis_ok
        wrong = Sweep(spec, {"victims": [2]}, workers=1,
                      extra_knobs={"duration": 0.04,
                                   "fault_switch": "S2"})
        assert wrong.payloads[0][4] == "S2"

    def test_parallel_matches_inline(self):
        """Worker count must not change any point's outcome."""
        spec = SWEEPS.get("incast")
        grid = {"hosts": [64, 128]}
        inline = Sweep(
            spec, grid, workers=1, extra_knobs=FAST
        ).run()
        pooled = Sweep(
            spec, grid, workers=2, extra_knobs=FAST
        ).run()
        for a, b in zip(inline.points, pooled.points):
            assert a.params == b.params
            assert a.seed == b.seed
            assert a.diagnosis_ok and b.diagnosis_ok
            assert a.problems == b.problems
            assert a.suspects == b.suspects
            assert a.peak_records == b.peak_records
            assert a.total_records == b.total_records
            assert a.sim_time_s == pytest.approx(b.sim_time_s)
            assert a.measurements == b.measurements

    def test_execute_point_matches_single_run(self):
        """A sweep point is the single run with the same knobs/seed."""
        from repro.scenarios import run_scenario

        spec = SWEEPS.get("incast")
        knobs = spec.knobs_for({"hosts": 64})
        knobs.update(FAST)
        point = execute_point(
            (spec.scenario, knobs, 7, spec.expect_problem, None, 0,
             {"hosts": 64})
        )
        single = run_scenario("incast", **knobs)
        assert point.error is None
        assert point.problems == [v.problem for v in single.verdicts]
        assert point.suspects == [
            v.suspect for v in single.verdicts if v.suspect
        ]
        assert point.measurements == single.measurements
