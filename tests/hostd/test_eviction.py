"""Tests for the record-store memory bound (spill-on-pressure)."""

import pytest

from repro.core.epoch import EpochRange
from repro.hostd.records import FlowRecordStore
from repro.simnet.packet import FlowKey, PROTO_UDP


def key(i):
    return FlowKey(f"s{i}", f"d{i}", i, i, PROTO_UDP)


def touch(store, i, t):
    rec = store.record_for(key(i))
    rec.observe(nbytes=100, t=t, priority=0, switch_path=["S1"],
                ranges={"S1": EpochRange(0, 0)}, observed_epoch=0)
    return rec


class TestEviction:
    def test_bound_enforced(self):
        store = FlowRecordStore("h", max_records=5)
        for i in range(12):
            touch(store, i, t=i * 0.001)
        assert len(store) <= 5
        assert store.evicted == 7

    def test_stalest_evicted_first(self):
        store = FlowRecordStore("h", max_records=3)
        for i in range(3):
            touch(store, i, t=i * 0.001)
        touch(store, 0, t=0.010)  # refresh flow 0
        touch(store, 99, t=0.011)  # push over the bound
        assert store.get(key(1)) is None  # stalest gone
        assert store.get(key(0)) is not None  # refreshed kept

    def test_spill_preserves_evicted_records(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        store = FlowRecordStore("h", spill_path=spill, max_records=2)
        for i in range(5):
            touch(store, i, t=i * 0.001)
        assert store.spilled == 3
        loaded = FlowRecordStore.load_from_disk("h", spill)
        assert len(loaded) == 3
        assert loaded.get(key(0)).bytes == 100

    def test_no_bound_no_eviction(self):
        store = FlowRecordStore("h")
        for i in range(100):
            touch(store, i, t=0.0)
        assert len(store) == 100
        assert store.evicted == 0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            FlowRecordStore("h", max_records=0)


class TestReloadBound:
    def test_load_honors_max_records(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        store = FlowRecordStore("h", spill_path=spill)
        for i in range(10):
            touch(store, i, t=i * 0.001)
        store.flush_to_disk()
        loaded = FlowRecordStore.load_from_disk("h", spill,
                                                max_records=4)
        assert len(loaded) == 4
        assert loaded.evicted == 6
        # the freshest records (by last_seen) survive the reload
        assert loaded.get(key(9)) is not None
        assert loaded.get(key(0)) is None

    def test_load_does_not_grow_spill_file(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        store = FlowRecordStore("h", spill_path=spill)
        for i in range(10):
            touch(store, i, t=i * 0.001)
        store.flush_to_disk()
        before = spill.read_bytes()
        loaded = FlowRecordStore.load_from_disk("h", spill,
                                                max_records=2)
        assert spill.read_bytes() == before
        assert loaded.spilled == 0

    def test_load_without_bound_keeps_everything(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        store = FlowRecordStore("h", spill_path=spill)
        for i in range(7):
            touch(store, i, t=i * 0.001)
        store.flush_to_disk()
        loaded = FlowRecordStore.load_from_disk("h", spill)
        assert len(loaded) == 7

    def test_reloaded_records_are_indexed(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        store = FlowRecordStore("h", spill_path=spill)
        for i in range(5):
            touch(store, i, t=i * 0.001)
        store.flush_to_disk()
        loaded = FlowRecordStore.load_from_disk("h", spill,
                                                max_records=3)
        hits = loaded.flows_through("S1", EpochRange(0, 0))
        assert [r.flow for r in hits] == [key(2), key(3), key(4)]
        assert hits == loaded.linear_flows_through("S1",
                                                   EpochRange(0, 0))
