"""Composable fault injection — the registry-driven fault layer.

Public surface:

* :class:`Fault` / :class:`FaultSpec` / :class:`FaultParam` /
  :func:`register_fault` / :data:`FAULTS` — the four-verb protocol
  (schedule → inject → heal → describe) and the registry every fault
  module registers into.
* :class:`FaultPlan` — compose N faults with independent schedules in
  one simulation; tracks each through pending → active → healed.
* :class:`FaultContext` — what faults act on (network + deployment).
* Concrete faults: ``link-down``, ``link-flap``, ``silent-drop``,
  ``ecmp-polarization``, ``clock-skew``, ``partial-deployment``,
  ``agent-crash``.

See ``docs/FAULTS.md`` (generated from this registry) for the full
catalogue.
"""

from .base import (
    ACTIVE,
    FAULTS,
    Fault,
    FaultContext,
    FaultError,
    FaultParam,
    FaultRegistry,
    FaultSpec,
    HEALED,
    PENDING,
    register_fault,
)
from .catalog import faults_markdown
from .clock import ClockSkewFault, skew_for
from .crash import AgentCrashFault
from .deploy import PartialDeploymentFault, parse_spare
from .drop import SilentDropFault
from .ecmp import EcmpPolarizationFault, port_blind_hash
from .link import LinkDownFault, LinkFlapFault
from .plan import FaultPlan

__all__ = [
    "ACTIVE",
    "FAULTS",
    "HEALED",
    "PENDING",
    "AgentCrashFault",
    "ClockSkewFault",
    "EcmpPolarizationFault",
    "Fault",
    "FaultContext",
    "FaultError",
    "FaultParam",
    "FaultPlan",
    "FaultRegistry",
    "FaultSpec",
    "LinkDownFault",
    "LinkFlapFault",
    "PartialDeploymentFault",
    "SilentDropFault",
    "faults_markdown",
    "parse_spare",
    "port_blind_hash",
    "register_fault",
    "skew_for",
]
