"""Unit tests for end-host triggers."""

import pytest

from repro.core.epoch import EpochClock, EpochRange
from repro.hostd.records import FlowRecordStore
from repro.hostd.triggers import (TcpTimeoutTrigger,
                                  ThroughputDropTrigger,
                                  alert_tuples_from_record)
from repro.simnet.engine import Simulator
from repro.simnet.packet import FlowKey, PROTO_TCP, make_tcp
from repro.simnet.tcp import open_tcp_flow
from repro.simnet.topology import Network


def key():
    return FlowKey("a", "b", 1, 2, PROTO_TCP)


def feed(trigger, sim, *, gbps, duration, start=None):
    """Schedule synthetic arrivals at a constant rate."""
    start = sim.now if start is None else start
    pkt_size = 1250
    interval = pkt_size * 8 / (gbps * 1e9)
    t = start
    while t < start + duration:
        pkt = make_tcp("a", "b", 1, 2, payload=pkt_size - 66)
        pkt.size = pkt_size
        sim.schedule_at(t, trigger.on_packet, pkt, t)
        t += interval


class TestThroughputDropTrigger:
    def make(self, sim, **kw):
        alerts = []
        store = FlowRecordStore("b")
        trig = ThroughputDropTrigger(sim, key(), "b", store,
                                     alerts.append, **kw)
        return trig, alerts

    def test_fires_on_50pct_drop(self):
        sim = Simulator()
        trig, alerts = self.make(sim)
        feed(trig, sim, gbps=1.0, duration=0.005)
        feed(trig, sim, gbps=0.2, duration=0.005, start=0.005)
        sim.run(until=0.012)
        trig.stop()
        assert len(alerts) >= 1
        a = alerts[0]
        assert a.kind == "throughput-drop"
        assert a.drop_ratio > 0.5
        assert a.rate_before_gbps > a.rate_after_gbps

    def test_no_alert_on_steady_traffic(self):
        sim = Simulator()
        trig, alerts = self.make(sim)
        feed(trig, sim, gbps=1.0, duration=0.020)
        sim.run(until=0.019)
        trig.stop()
        assert alerts == []

    def test_no_alert_below_floor(self):
        """A trickle flow dropping to zero is not a 'drastic change'."""
        sim = Simulator()
        trig, alerts = self.make(sim, floor_gbps=0.05)
        feed(trig, sim, gbps=0.01, duration=0.005)
        sim.run(until=0.015)
        trig.stop()
        assert alerts == []

    def test_refractory_suppresses_storm(self):
        sim = Simulator()
        trig, alerts = self.make(sim, refractory=0.050)
        feed(trig, sim, gbps=1.0, duration=0.005)
        # long starvation: many zero windows, one alert
        sim.run(until=0.030)
        trig.stop()
        assert len(alerts) == 1

    def test_gradual_collapse_still_detected(self):
        """Reference decays slowly, so a multi-window slide triggers."""
        sim = Simulator()
        trig, alerts = self.make(sim)
        feed(trig, sim, gbps=1.0, duration=0.005)
        feed(trig, sim, gbps=0.7, duration=0.002, start=0.005)
        feed(trig, sim, gbps=0.3, duration=0.005, start=0.007)
        sim.run(until=0.014)
        trig.stop()
        assert len(alerts) >= 1

    def test_alert_includes_record_tuples(self):
        sim = Simulator()
        alerts = []
        store = FlowRecordStore("b")
        rec = store.record_for(key())
        rec.observe(nbytes=100, t=0.0, priority=0,
                    switch_path=["S1", "S2"],
                    ranges={"S1": EpochRange(0, 1),
                            "S2": EpochRange(0, 2)},
                    observed_epoch=0)
        trig = ThroughputDropTrigger(sim, key(), "b", store, alerts.append)
        feed(trig, sim, gbps=1.0, duration=0.005)
        sim.run(until=0.012)
        trig.stop()
        assert alerts and alerts[0].switch_path == ["S1", "S2"]

    def test_clock_restricts_tuple_ranges(self):
        sim = Simulator()
        alerts = []
        store = FlowRecordStore("b")
        rec = store.record_for(key())
        # record spans a long history: epochs 0..50
        rec.observe(nbytes=100, t=0.0, priority=0, switch_path=["S1"],
                    ranges={"S1": EpochRange(0, 50)}, observed_epoch=0)
        trig = ThroughputDropTrigger(sim, key(), "b", store, alerts.append,
                                     clock=EpochClock(1), slack_epochs=1)
        feed(trig, sim, gbps=1.0, duration=0.005)
        sim.run(until=0.012)
        trig.stop()
        rng = alerts[0].tuples[0].epochs
        assert len(rng) <= 6  # drop window + slack, not all 51 epochs

    def test_invalid_threshold(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ThroughputDropTrigger(sim, key(), "b", FlowRecordStore("b"),
                                  lambda a: None, drop_threshold=1.5)


class TestAlertTuples:
    def test_restrict_intersects(self):
        store = FlowRecordStore("b")
        rec = store.record_for(key())
        rec.observe(nbytes=1, t=0.0, priority=0, switch_path=["S1", "S2"],
                    ranges={"S1": EpochRange(0, 10),
                            "S2": EpochRange(5, 20)},
                    observed_epoch=3)
        tuples = alert_tuples_from_record(rec, restrict=EpochRange(8, 12))
        by_sw = {t.switch: t.epochs for t in tuples}
        assert by_sw["S1"] == EpochRange(8, 10)
        assert by_sw["S2"] == EpochRange(8, 12)

    def test_disjoint_restriction_keeps_recorded_range(self):
        store = FlowRecordStore("b")
        rec = store.record_for(key())
        rec.observe(nbytes=1, t=0.0, priority=0, switch_path=["S1"],
                    ranges={"S1": EpochRange(0, 2)}, observed_epoch=0)
        tuples = alert_tuples_from_record(rec, restrict=EpochRange(90, 95))
        assert tuples[0].epochs == EpochRange(0, 2)


class TestTcpTimeoutTrigger:
    def test_fires_on_rto(self):
        net = Network()
        s = net.add_switch("S")
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, s)
        net.connect(b, s)
        net.compute_routes()
        sender, _ = open_tcp_flow(net.sim, a, b, sport=1, dport=2,
                                  total_bytes=None, min_rto=0.010)
        sender.start()
        alerts = []
        trig = TcpTimeoutTrigger(net.sim, sender, "a", alerts.append)
        net.run(until=0.003)
        s.clear_routes()  # blackhole -> RTO
        net.run(until=0.060)
        trig.stop()
        sender.stop()
        assert len(alerts) >= 1
        assert alerts[0].kind == "tcp-timeout"
        assert alerts[0].flow == sender.flow
