"""Render the scenario catalogue from the registry metadata.

``docs/SCENARIOS.md`` is generated from the same :class:`ScenarioSpec`
objects the CLI ``list`` command prints — one source of truth.  Refresh
the checked-in page with::

    python tools/gen_scenario_docs.py

A tier-1 test asserts the file matches this renderer's output, so a
registry change without a regenerated page fails CI.
"""

from __future__ import annotations

from .base import REGISTRY, ScenarioSpec

_PREAMBLE = """\
# Scenario catalog

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_scenario_docs.py -->

Every scenario is a registered plugin implementing the four-phase
protocol (build → run → collect → diagnose) described in
[ARCHITECTURE.md](ARCHITECTURE.md).  Run any of them with

```sh
python -m repro.cli run <name> [--knob key=value ...]
```

and list them with `python -m repro.cli list`.  Historical `fig*` ids
remain as aliases, both as `run fig3`-style arguments and as standalone
CLI subcommands.
"""


def _spec_markdown(spec: ScenarioSpec) -> str:
    lines = [f"## `{spec.name}`", "", spec.summary, ""]
    lines.append(f"- **Reproduces / models:** {spec.paper_ref}")
    lines.append(f"- **Expected diagnosis:** {spec.expected_diagnosis}")
    states = ", ".join(f"`{s}`" for s in spec.verdict_states)
    lines.append(f"- **Verdict states (see "
                 f"[DIAGNOSIS.md](DIAGNOSIS.md)):** {states}")
    if spec.faults:
        fault_str = ", ".join(f"`{f}`" for f in spec.faults)
        lines.append(f"- **Injects (fault registry, see "
                     f"[FAULTS.md](FAULTS.md)):** {fault_str}")
    if spec.aliases:
        alias_str = ", ".join(f"`{a}`" for a in spec.aliases)
        lines.append(f"- **Aliases:** {alias_str}")
    lines.append(f"- **Run:** `{spec.cli_example}`")
    if spec.knobs:
        lines.append("")
        lines.append("| knob | default | description |")
        lines.append("|---|---|---|")
        for name, knob in spec.knobs.items():
            lines.append(f"| `{name}` | `{knob.default!r}` "
                         f"| {knob.help} |")
    return "\n".join(lines) + "\n"


def catalog_markdown() -> str:
    """The full ``docs/SCENARIOS.md`` body."""
    sections = [_PREAMBLE]
    sections.extend(_spec_markdown(spec) for spec in REGISTRY.specs())
    return "\n".join(sections)
