"""Partial-deployment fault: strip SwitchPointer off some switches.

The paper assumes every switch runs the datapath; real rollouts do not.
This fault removes the instrumentation — pipeline hook, pointer store,
control-plane agent — from a fraction of switches (an incremental
deployment, or an instrumentation outage when scheduled mid-run).  The
analyzer keeps working from *host-only evidence* for the stripped
switches: pointer pulls fall back to consulting every host, and drop
localization treats them as evidence gaps rather than silent hops (see
``Analyzer.hosts_for`` and ``localize_packet_drops``).

Selection draws from the seeded run stream (:mod:`repro.core.rng`), so
a sweep point's mask is reproducible from its recorded seed; ``spare``
pins switches that must stay instrumented (e.g. the CherryPick
embedding hop, without which no host records exist at all).
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.rng import run_stream
from .base import Fault, FaultContext, FaultError, FaultParam, FaultSpec, register_fault


def parse_spare(spare: str | Iterable[str]) -> tuple[str, ...]:
    """``spare`` may be a comma string (CLI knob) or an iterable."""
    if isinstance(spare, str):
        return tuple(s.strip() for s in spare.split(",") if s.strip())
    return tuple(spare)


@register_fault
class PartialDeploymentFault(Fault):
    """Uninstrument a random fraction of switches (keeping ``frac``).

    ``frac`` is the fraction of switches that *keep* their
    instrumentation; the stripped count is ``round((1-frac)·n)``,
    drawn from the non-spared switches.  Healing reinstates the exact
    datapaths and agents that were removed (their pointer stores kept
    accumulating nothing while detached, mirroring a real redeploy).
    """

    spec = FaultSpec(
        name="partial-deployment",
        summary="remove switchd instrumentation from a fraction of "
        "switches; the analyzer falls back to host-only evidence",
        degrades="switch evidence: stripped switches publish no pointers, "
        "widening consult fan-out and coarsening drop localization",
        diagnosed_by="(none — a stressor; sweeps measure accuracy vs "
        "deployment fraction)",
        params={
            "frac": FaultParam(1.0, "fraction of switches keeping instrumentation"),
            "spare": FaultParam("", "switches never stripped (comma-separated names)"),
        },
    )

    def __init__(self, **params: Any):
        super().__init__(**params)
        frac = self.p["frac"]
        if not 0.0 <= frac <= 1.0:
            raise FaultError(f"partial-deployment: frac must be in [0, 1], got {frac}")
        self.removed: tuple[str, ...] = ()

    def inject(self, ctx: FaultContext) -> None:
        deploy = ctx.require_deployment(self)
        spare = set(parse_spare(self.p["spare"]))
        unknown = spare - set(ctx.network.switches)
        if unknown:
            raise FaultError(
                f"partial-deployment: spare names unknown switch(es) "
                f"{sorted(unknown)}"
            )
        all_switches = sorted(deploy.datapaths)
        candidates = [s for s in all_switches if s not in spare]
        n_remove = min(
            len(candidates), round((1.0 - self.p["frac"]) * len(all_switches))
        )
        self.removed = tuple(sorted(run_stream().sample(candidates, n_remove)))
        for name in self.removed:
            deploy.uninstrument_switch(name)

    def heal(self, ctx: FaultContext) -> None:
        deploy = ctx.require_deployment(self)
        for name in self.removed:
            deploy.reinstrument_switch(name)
        self.removed = ()
