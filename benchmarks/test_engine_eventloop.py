"""Event-loop micro-benchmark: the ``call_after`` fast path.

The per-packet simulator hot path (serialization done, propagation
done, CBR spacing) schedules millions of fire-and-forget events per
run.  :meth:`Simulator.call_after` pushes a bare ``(when, seq, fn,
arg)`` tuple instead of allocating an :class:`EventHandle`; this
benchmark drives both paths through the same self-rescheduling chain
and asserts the fast path actually is one.  The absolute fast-path
wall time is gated by ``benchmarks/baselines/engine_eventloop.json``."""

import time

import pytest

from repro.simnet.engine import Simulator

from benchmarks.reporting import emit

N_EVENTS = 300_000
ROUNDS = 3
DELAY = 1e-6


class _HandleChain:
    """Self-rescheduling event via the handle-allocating schedule()."""

    def __init__(self, sim: Simulator, remaining: int):
        self.sim = sim
        self.remaining = remaining
        sim.schedule(DELAY, self._tick)

    def _tick(self) -> None:
        self.remaining -= 1
        if self.remaining:
            self.sim.schedule(DELAY, self._tick)


class _FastChain:
    """The same chain on the fire-and-forget call_after() path."""

    def __init__(self, sim: Simulator, remaining: int):
        self.sim = sim
        self.remaining = remaining
        sim.call_after(DELAY, self._tick)

    def _tick(self, _arg: object = None) -> None:
        self.remaining -= 1
        if self.remaining:
            self.sim.call_after(DELAY, self._tick)


def _run(chain_cls) -> float:
    sim = Simulator()
    chain_cls(sim, N_EVENTS)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert sim.events_processed == N_EVENTS
    return elapsed


def run_bench():
    handle_s = min(_run(_HandleChain) for _ in range(ROUNDS))
    fast_s = min(_run(_FastChain) for _ in range(ROUNDS))
    return handle_s, fast_s


@pytest.mark.benchmark(group="engine_eventloop")
def test_call_after_fast_path(benchmark):
    handle_s, fast_s = benchmark.pedantic(run_bench, rounds=1,
                                          iterations=1)
    handle_eps = N_EVENTS / handle_s
    fast_eps = N_EVENTS / fast_s
    speedup = handle_s / fast_s
    emit("engine_eventloop", [
        f"events: {N_EVENTS}   rounds: {ROUNDS} (best)",
        f"schedule() + EventHandle: {handle_s * 1e3:8.1f} ms   "
        f"{handle_eps:10,.0f} events/s",
        f"call_after() fast path:   {fast_s * 1e3:8.1f} ms   "
        f"{fast_eps:10,.0f} events/s",
        f"speedup: {speedup:5.2f}x",
        "(fast path: bare (when, seq, fn, arg) heap tuples, "
        "no handle allocation)"],
        data={
            "events": N_EVENTS,
            "handle_s": round(handle_s, 4),
            "fastpath_s": round(fast_s, 4),
            "handle_events_per_s": round(handle_eps),
            "fastpath_events_per_s": round(fast_eps),
            "speedup": round(speedup, 2),
        })

    assert speedup >= 1.1, speedup
