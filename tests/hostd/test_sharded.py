"""ShardedRecordStore: placement, global ordering, eviction, spill."""

import json

import pytest

from repro.core.epoch import EpochRange
from repro.hostd.query import QueryEngine
from repro.hostd.records import FlowRecordStore
from repro.hostd.sharded import ShardedRecordStore, shard_of
from repro.simnet.packet import FlowKey, PROTO_UDP


def flow_key(i: int) -> FlowKey:
    return FlowKey(f"s{i}", "dst", 1000 + i, 9, PROTO_UDP)


def ingest(store, i, *, t, switches=("S1",), lo=0, nbytes=100):
    ranges = {sw: EpochRange(lo, lo + 1) for sw in switches}
    store.ingest(flow_key(i), nbytes=nbytes, t=t, priority=0,
                 switch_path=list(switches), ranges=ranges,
                 observed_epoch=lo)


class TestPlacement:
    def test_shard_of_is_stable(self):
        assert shard_of(flow_key(3), 8) == shard_of(flow_key(3), 8)

    def test_records_spread_across_shards(self):
        store = ShardedRecordStore("h", n_shards=4)
        for i in range(64):
            ingest(store, i, t=0.001 * i)
        occupied = sum(1 for s in store.shards if len(s))
        assert occupied > 1
        assert len(store) == 64

    def test_same_flow_same_shard_same_record(self):
        store = ShardedRecordStore("h", n_shards=4)
        ingest(store, 1, t=0.001)
        ingest(store, 1, t=0.002)
        assert len(store) == 1
        rec = store.get(flow_key(1))
        assert rec is not None and rec.packets == 2

    def test_single_shard_degenerates_cleanly(self):
        store = ShardedRecordStore("h", n_shards=1)
        for i in range(8):
            ingest(store, i, t=0.001 * i)
        assert len(store) == 8
        assert len(store.shards[0]) == 8

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ShardedRecordStore("h", n_shards=0)
        with pytest.raises(ValueError):
            ShardedRecordStore("h", max_records=0)


class TestGlobalOrdering:
    def test_iteration_in_creation_order(self):
        store = ShardedRecordStore("h", n_shards=4)
        for i in range(32):
            ingest(store, i, t=0.001 * i)
        seqs = [rec._seq for rec in store]
        assert seqs == sorted(seqs)
        assert [rec.flow for rec in store] == [flow_key(i)
                                               for i in range(32)]

    def test_flows_through_matches_flat_store(self):
        flat = FlowRecordStore("h")
        sharded = ShardedRecordStore("h", n_shards=4)
        for i in range(48):
            sw = ("S1", "S2") if i % 3 else ("S2",)
            for store in (flat, sharded):
                ingest(store, i, t=0.001 * i, switches=sw, lo=i % 7)
        for sw in ("S1", "S2", "S3"):
            for win in (None, EpochRange(2, 4)):
                a = [r.flow for r in flat.flows_through(sw, win)]
                b = [r.flow for r in sharded.flows_through(sw, win)]
                assert a == b

    def test_topk_merge_matches_query_engine_on_flat(self):
        flat = FlowRecordStore("h")
        sharded = ShardedRecordStore("h", n_shards=4)
        for i in range(48):
            for store in (flat, sharded):
                ingest(store, i, t=0.001 * i, nbytes=100 + (i * 37) % 500)
        top_flat = QueryEngine(flat).top_k_flows(5, switch="S1")
        top_sharded = QueryEngine(sharded).top_k_flows(5, switch="S1")
        assert ([s._astuple() for s in top_flat.payload]
                == [s._astuple() for s in top_sharded.payload])


class TestEviction:
    def test_global_bound_enforced(self):
        store = ShardedRecordStore("h", n_shards=4, max_records=10)
        for i in range(40):
            ingest(store, i, t=0.001 * i)
        assert len(store) == 10
        assert store.evicted == 30
        assert store.peak_records == 11  # bound + the insert that trips it

    def test_evicts_globally_stalest_not_per_shard(self):
        store = ShardedRecordStore("h", n_shards=4, max_records=8)
        for i in range(16):
            ingest(store, i, t=0.001 * i)
        survivors = {rec.flow for rec in store}
        # the 8 most recently seen flows survive, wherever they hash
        assert survivors == {flow_key(i) for i in range(8, 16)}

    def test_index_consistent_after_eviction(self):
        store = ShardedRecordStore("h", n_shards=4, max_records=6)
        for i in range(24):
            ingest(store, i, t=0.001 * i, switches=("S1", "S2"))
        live = {id(rec) for rec in store}
        for sw in ("S1", "S2"):
            for rec in store.flows_through(sw):
                assert id(rec) in live

    def test_deferred_eviction_batch(self):
        store = ShardedRecordStore("h", n_shards=4, max_records=5)
        store.begin_batch()
        for i in range(20):
            ingest(store, i, t=0.001 * i)
        assert len(store) == 20  # bound deferred inside the batch
        store.end_batch()
        assert len(store) == 5
        assert store.peak_records == 20


class TestSpill:
    def test_flush_and_reload_round_trip(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        store = ShardedRecordStore("h", spill_path=path, n_shards=4)
        for i in range(24):
            ingest(store, i, t=0.001 * i, switches=("S1", "S2"),
                   lo=i % 5)
        store.flush_to_disk()
        again = ShardedRecordStore.load_from_disk("h", path, n_shards=4)
        assert len(again) == 24
        assert [r.flow for r in again] == [r.flow for r in store]
        for sw in ("S1", "S2"):
            assert ([r.flow for r in again.flows_through(sw)]
                    == [r.flow for r in store.flows_through(sw)])

    def test_reload_respects_bound_without_reappending(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        store = ShardedRecordStore("h", spill_path=path, n_shards=4)
        for i in range(20):
            ingest(store, i, t=0.001 * i)
        store.flush_to_disk()
        size_before = path.stat().st_size
        again = ShardedRecordStore.load_from_disk(
            "h", path, max_records=6, n_shards=4)
        assert len(again) == 6
        assert again.evicted == 14
        assert path.stat().st_size == size_before

    def test_eviction_spills_to_shared_file(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        store = ShardedRecordStore("h", spill_path=path, n_shards=4,
                                   max_records=4)
        for i in range(12):
            ingest(store, i, t=0.001 * i)
        assert store.spilled == 8
        lines = [json.loads(line) for line in
                 path.read_text(encoding="utf-8").splitlines()]
        assert len(lines) == 8

    def test_flat_spill_loads_into_sharded_store(self, tmp_path):
        """A sharded store can adopt a flat store's spill file."""
        path = tmp_path / "spill.jsonl"
        flat = FlowRecordStore("h", spill_path=path)
        for i in range(16):
            ingest(flat, i, t=0.001 * i, switches=("S1",), lo=i % 3)
        flat.flush_to_disk()
        sharded = ShardedRecordStore.load_from_disk("h", path,
                                                    n_shards=4)
        assert ([r.flow for r in sharded]
                == [r.flow for r in flat])
