"""Incast — diagnosis fidelity and latency vs fan-in degree.

An N-to-1 synchronized burst collapses a victim flow at the receiver's
leaf; the analyzer must classify the event as incast, name the
convergence switch, and identify all N responders as culprits.  The
diagnosis latency grows with N (more host records to consult), like
the paper's Fig 7/8 server sweeps.
"""

import pytest

from repro.scenarios import IncastScenario

from benchmarks.reporting import emit

FAN_IN = [4, 8, 16]


def run_sweep():
    rows = {}
    for n in FAN_IN:
        res = IncastScenario(n_senders=n, duration=0.030,
                             burst_start=0.010).execute()
        rows[n] = res
    return rows


@pytest.mark.benchmark(group="incast")
def test_incast_diagnosis(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["senders  diagnosed  fan_in  diag_ms  downlink_drops"]
    data = {}
    for n in FAN_IN:
        res = rows[n]
        v = res.verdict("incast")
        fan_in = len({c.flow for c in v.culprits
                      if c.flow.dst == v.victim.dst}) if v else 0
        diag_ms = v.total_time_s * 1e3 if v else float("nan")
        drops = res.measurements["downlink_queue_drops"]
        lines.append(f"  {n:5d}  {str(v is not None):9s}  {fan_in:6d}  "
                     f"{diag_ms:7.1f}  {drops:6d}")
        data[n] = {"diagnosed": v is not None, "fan_in": fan_in,
                   "diagnosis_ms": diag_ms, "suspect": v.suspect if v
                   else None, "downlink_queue_drops": drops}
    lines.append("(expected: every row diagnosed as incast at leaf0, "
                 "fan_in == senders)")
    emit("incast", lines, data=data)

    for n in FAN_IN:
        assert data[n]["diagnosed"], f"n={n} not classified incast"
        assert data[n]["suspect"] == "leaf0"
        assert data[n]["fan_in"] == n
        assert data[n]["downlink_queue_drops"] > 0
    times = [data[n]["diagnosis_ms"] for n in FAN_IN]
    assert times == sorted(times), "diagnosis must grow with fan-in"
