"""Full VLAN-mode debugging loop on a leaf-spine fabric.

The commodity design (§4.1.3) on the other clos topology the paper
names: leaf-spine.  The leaf→spine link pins cross-leaf paths, so the
double-tag embedding plus CherryPick reconstruction must carry the
whole §5.1 loop, end to end.
"""

import pytest

from repro import SwitchPointerDeployment
from repro.analyzer import diagnose_contention
from repro.core.headers import VlanDoubleTag
from repro.simnet.packet import PRIO_HIGH, PRIO_LOW, make_udp
from repro.simnet.queues import StrictPriorityQueue
from repro.simnet.tcp import open_tcp_flow
from repro.simnet.topology import build_leaf_spine
from repro.simnet.traffic import UdpCbrSource, UdpSink


@pytest.fixture(scope="module")
def diagnosed():
    def qf():
        return StrictPriorityQueue(levels=3,
                                   capacity_bytes=4 * 1024 * 1024)
    # single spine: cross-leaf paths share the spine trunks, so the
    # victim and aggressor collide deterministically
    net = build_leaf_spine(n_leaves=2, n_spines=1, hosts_per_leaf=4,
                           queue_factory=qf)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2)
    sim = net.sim
    src, dst = net.hosts["h0_0"], net.hosts["h1_0"]
    sender, _ = open_tcp_flow(sim, src, dst, sport=100, dport=200,
                              total_bytes=None, priority=PRIO_LOW,
                              min_rto=0.010)
    sender.start()
    trigger = deploy.watch_flow(sender.flow)
    UdpSink(net.hosts["h1_1"], 7000)
    UdpCbrSource(sim, net.hosts["h0_1"], "h1_1", sport=7000, dport=7000,
                 rate_bps=1e9, priority=PRIO_HIGH, start=0.015,
                 duration=0.002)
    net.run(until=0.050)
    sender.stop()
    trigger.stop()
    return net, deploy, sender


class TestLeafSpineVlanLoop:
    def test_vlan_tag_reaches_destination(self, diagnosed):
        net, deploy, sender = diagnosed
        caught = []
        net.hosts["h1_2"].sniffers.append(
            lambda h, p, t: caught.append(p.telemetry))
        net.hosts["h0_2"].send(make_udp("h0_2", "h1_2", 5, 9, 400))
        net.run(until=net.sim.now + 0.001)
        assert caught and isinstance(caught[0], VlanDoubleTag)

    def test_record_path_is_leaf_spine_leaf(self, diagnosed):
        net, deploy, sender = diagnosed
        rec = deploy.host_agents["h1_0"].store.get(sender.flow)
        assert rec.switch_path == ["leaf0", "spine0", "leaf1"]

    def test_alert_and_diagnosis(self, diagnosed):
        net, deploy, sender = diagnosed
        alerts = deploy.alerts()
        assert alerts
        verdict = diagnose_contention(deploy.analyzer, alerts[0])
        assert verdict.problem == "priority-contention"
        assert "h0_1" in {c.flow.src for c in verdict.culprits}

    def test_rule_tables_on_every_switch(self, diagnosed):
        net, deploy, sender = diagnosed
        for name, sw in net.switches.items():
            table = deploy.rule_tables[name]
            assert table.total_rules == sw.port_count + 1
