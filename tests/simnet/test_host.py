"""Unit tests for the end-host model."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.packet import PROTO_TCP, PROTO_UDP, make_udp
from repro.simnet.topology import Network


def pair():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    sw = net.add_switch("S")
    net.connect(a, sw)
    net.connect(b, sw)
    net.compute_routes()
    return net, a, b


class TestSockets:
    def test_bind_and_deliver(self):
        net, a, b = pair()
        got = []
        b.bind(PROTO_UDP, 50, lambda p, t: got.append((p, t)))
        a.send(make_udp("a", "b", 1, 50, 500))
        net.run()
        assert len(got) == 1

    def test_unbound_port_counts_undeliverable(self):
        net, a, b = pair()
        a.send(make_udp("a", "b", 1, 50, 500))
        net.run()
        assert b.undeliverable == 1

    def test_double_bind_rejected(self):
        _, a, _ = pair()
        a.bind(PROTO_UDP, 50, lambda p, t: None)
        with pytest.raises(ValueError):
            a.bind(PROTO_UDP, 50, lambda p, t: None)

    def test_same_port_different_proto_ok(self):
        _, a, _ = pair()
        a.bind(PROTO_UDP, 50, lambda p, t: None)
        a.bind(PROTO_TCP, 50, lambda p, t: None)

    def test_unbind(self):
        net, a, b = pair()
        b.bind(PROTO_UDP, 50, lambda p, t: None)
        b.unbind(PROTO_UDP, 50)
        a.send(make_udp("a", "b", 1, 50, 500))
        net.run()
        assert b.undeliverable == 1


class TestSniffers:
    def test_sniffers_run_before_sockets(self):
        net, a, b = pair()
        order = []
        b.sniffers.append(lambda h, p, t: order.append("sniff"))
        b.bind(PROTO_UDP, 50, lambda p, t: order.append("sock"))
        a.send(make_udp("a", "b", 1, 50, 500))
        net.run()
        assert order == ["sniff", "sock"]

    def test_sniffers_see_undeliverable_packets_too(self):
        net, a, b = pair()
        seen = []
        b.sniffers.append(lambda h, p, t: seen.append(p))
        a.send(make_udp("a", "b", 1, 99, 500))
        net.run()
        assert len(seen) == 1


class TestCounters:
    def test_tx_rx_accounting(self):
        net, a, b = pair()
        b.bind(PROTO_UDP, 50, lambda p, t: None)
        a.send(make_udp("a", "b", 1, 50, 700))
        net.run()
        assert a.tx_packets == 1 and a.tx_bytes == 700
        assert b.rx_packets == 1 and b.rx_bytes == 700

    def test_send_stamps_created_at(self):
        net, a, b = pair()
        net.sim.schedule(0.5, lambda: a.send(make_udp("a", "b", 1, 50, 100)))
        caught = []
        b.sniffers.append(lambda h, p, t: caught.append(p.created_at))
        net.run()
        assert caught == [0.5]

    def test_send_without_nic_raises(self):
        host = Host(Simulator(), "lonely")
        with pytest.raises(RuntimeError):
            host.send(make_udp("lonely", "x", 1, 2, 100))

    def test_second_nic_rejected(self):
        sim = Simulator()
        h = Host(sim, "h")
        other = Host(sim, "o")
        third = Host(sim, "t")
        l1 = Link(sim, h, other)
        h.attach(l1.iface_of(h))
        l2 = Link(sim, h, third)
        with pytest.raises(ValueError):
            h.attach(l2.iface_of(h))
