"""Fig 12 — top-100 query response time, SwitchPointer vs PathDump.

Paper: 96 servers; the query asks for the top-100 flows through one
switch.  PathDump has no directory, so it contacts all 96 servers and
sits at ~0.3-0.4 s regardless of how many hold relevant records.
SwitchPointer contacts only the servers named by the switch's pointer,
so its response time grows with the number of *relevant* servers and
matches PathDump only when all 96 are relevant.  Connection initiation
dominates both (§6.2).

Shape checks: PathDump flat; SwitchPointer monotone in relevant count;
SwitchPointer strictly cheaper whenever relevant < 96; equal at 96.
"""

import pytest

from repro import SwitchPointerDeployment
from repro.baselines.pathdump import (PathDumpAnalyzer,
                                      top_k_with_switchpointer)
from repro.core.epoch import EpochRange
from repro.rpc.fabric import RpcFabric
from repro.simnet.packet import make_udp
from repro.simnet.topology import Network

from benchmarks.reporting import emit

TOTAL_SERVERS = 96
RELEVANT_COUNTS = [1, 8, 16, 32, 64, 96]


def build_populated(n_relevant: int):
    """Dumbbell: 96 receivers behind S2; flows to the first n_relevant."""
    net = Network()
    s1 = net.add_switch("S1")
    s2 = net.add_switch("S2")
    net.connect(s1, s2, rate_bps=10e9)
    tx = net.add_host("tx")
    net.connect(tx, s1, rate_bps=10e9)
    for i in range(TOTAL_SERVERS):
        rx = net.add_host(f"rx{i:02d}")
        net.connect(rx, s2, rate_bps=10e9)
    net.compute_routes()
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
    for i in range(n_relevant):
        for p in range(2):
            net.hosts["tx"].send(
                make_udp("tx", f"rx{i:02d}", 1000 + i, 9, 800))
    net.run()
    return net, deploy


def run_fig12():
    rows = {}
    for n in RELEVANT_COUNTS:
        net, deploy = build_populated(n)
        epochs = EpochRange(0, 1)
        _, sp_bd = top_k_with_switchpointer(
            deploy.analyzer, 100, switch="S1", epochs=epochs)
        pd = PathDumpAnalyzer(deploy.host_agents, rpc=RpcFabric())
        _, pd_bd = pd.top_k_flows(100, switch="S1", epochs=epochs)
        rows[n] = (sp_bd, pd_bd)
    return rows


@pytest.mark.benchmark(group="fig12")
def test_fig12_top100_query(benchmark):
    rows = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    lines = ["relevant  switchpointer_s  pathdump_s   "
             "sp_conn_init_s  pd_conn_init_s"]
    for n in RELEVANT_COUNTS:
        sp_bd, pd_bd = rows[n]
        lines.append(
            f"  {n:6d}  {sp_bd.total:15.4f}  {pd_bd.total:10.4f}   "
            f"{sp_bd.parts.get('connection_initiation', 0):14.4f}  "
            f"{pd_bd.parts.get('connection_initiation', 0):14.4f}")
    lines.append("(paper: PathDump flat ~0.3-0.4 s at 96 servers; "
                 "SwitchPointer grows with relevant servers, equal only "
                 "when all 96 are relevant; connection initiation "
                 "dominates both)")
    emit("fig12_top100_query", lines)

    sp_times = [rows[n][0].total for n in RELEVANT_COUNTS]
    pd_times = [rows[n][1].total for n in RELEVANT_COUNTS]
    # PathDump flat: every run contacts all 96+1 servers
    assert max(pd_times) - min(pd_times) < 0.02
    assert 0.25 <= pd_times[0] <= 0.45
    # SwitchPointer monotone in relevant count
    assert sp_times == sorted(sp_times)
    # strictly cheaper while relevant < 96
    for n, sp, pd in zip(RELEVANT_COUNTS, sp_times, pd_times):
        if n < TOTAL_SERVERS:
            assert sp < pd, n
    # converges at 96/96 (PathDump also contacts tx: tiny slack)
    assert sp_times[-1] == pytest.approx(pd_times[-1], rel=0.05)
    # connection initiation dominates (>60% of the 96-server total)
    sp_bd96 = rows[96][0]
    assert (sp_bd96.parts["connection_initiation"]
            > 0.6 * sp_bd96.total)


@pytest.mark.benchmark(group="fig12")
def test_fig12_thread_pool_optimization(benchmark):
    """§6.2: 'can be addressed with proper technique such as thread
    pool management' — the pooled fabric removes the linear term."""

    def run():
        net, deploy = build_populated(TOTAL_SERVERS)
        epochs = EpochRange(0, 1)
        _, on_demand = top_k_with_switchpointer(
            deploy.analyzer, 100, switch="S1", epochs=epochs)
        deploy.analyzer.rpc = RpcFabric(pooled=True)
        _, pooled = top_k_with_switchpointer(
            deploy.analyzer, 100, switch="S1", epochs=epochs)
        return on_demand, pooled

    on_demand, pooled = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig12_thread_pool", [
        f"on-demand threads: {on_demand.total:.4f} s",
        f"thread pool:       {pooled.total:.4f} s",
        "(the paper attributes the response-time slope to on-demand "
        "connection initiation; pooling removes it)"])
    assert pooled.total < on_demand.total / 5
