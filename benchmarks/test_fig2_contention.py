"""Fig 2 — "too much traffic": priority and microburst contention.

Paper: a 100 ms low-priority TCP flow shares a trunk with UDP bursts of
m ∈ {1, 2, 4, 8, 16} flows (1 ms each).  Under strict priority (Fig 2a)
the victim starves for ~m ms and its inter-packet gaps grow to ~m ms;
at m = 16 it can hit a TCP timeout.  Under FIFO (Fig 2b) throughput
drops similarly but gap inflation is much milder.

Shape checks: starvation and max-gap grow monotonically with m under
priority; FIFO gaps ≪ priority gaps; the m = 16 run reaches ~0 Gbps.
"""

import pytest

from repro.scenarios import run_contention_scenario

from benchmarks.reporting import emit, fmt_series

FLOW_COUNTS = [1, 2, 4, 8, 16]


def run_sweep(discipline: str) -> dict[int, dict]:
    rows = {}
    for m in FLOW_COUNTS:
        res = run_contention_scenario(m, discipline=discipline,
                                      duration=0.045, burst_start=0.010,
                                      watch=False)
        rows[m] = {
            "starvation_ms": res.starvation_ms(),
            "max_gap_ms": res.max_gap_ms(),
            "timeouts": res.tcp_timeouts,
            "result": res,
        }
    return rows


@pytest.mark.benchmark(group="fig2")
def test_fig2a_priority_contention(benchmark):
    rows = benchmark.pedantic(run_sweep, args=("priority",),
                              rounds=1, iterations=1)
    lines = ["m_flows  starvation_ms  max_interarrival_ms  tcp_timeouts"]
    for m in FLOW_COUNTS:
        r = rows[m]
        lines.append(f"  {m:5d}  {r['starvation_ms']:12.1f}  "
                     f"{r['max_gap_ms']:18.2f}  {r['timeouts']:10d}")
    lines.append("")
    lines.append("victim throughput timeline, m=16 (paper: ~0 Gbps for "
                 "~10 ms):")
    series = rows[16]["result"].throughput.series(until=0.045)
    lines += fmt_series(series, every=2)
    emit("fig2a_priority_contention", lines)

    starv = [rows[m]["starvation_ms"] for m in FLOW_COUNTS]
    gaps = [rows[m]["max_gap_ms"] for m in FLOW_COUNTS]
    assert starv == sorted(starv), "starvation must grow with m"
    assert gaps == sorted(gaps), "gap inflation must grow with m"
    assert rows[16]["starvation_ms"] >= 8.0
    assert rows[16]["timeouts"] >= 1  # the paper's 'extreme' outcome


@pytest.mark.benchmark(group="fig2")
def test_fig2b_microburst_contention(benchmark):
    rows = benchmark.pedantic(run_sweep, args=("fifo",),
                              rounds=1, iterations=1)
    lines = ["m_flows  starvation_ms  max_interarrival_ms"]
    for m in FLOW_COUNTS:
        r = rows[m]
        lines.append(f"  {m:5d}  {r['starvation_ms']:12.1f}  "
                     f"{r['max_gap_ms']:18.2f}")
    emit("fig2b_microburst_contention", lines)

    # Fig 2(b)'s key contrast: equal treatment, so gaps stay far
    # smaller than the ~m ms starvation gaps of the priority case even
    # though throughput still dips (the victim shares the trunk fairly).
    assert rows[16]["max_gap_ms"] < 4.0
    assert rows[16]["max_gap_ms"] < rows[16]["starvation_ms"] + 4.0
    dips = [rows[m]["result"].throughput.rate_at(0.0105)
            for m in FLOW_COUNTS]
    assert dips[-1] < 0.9  # visible throughput dip during the burst


@pytest.mark.benchmark(group="fig2")
def test_fig2_priority_vs_fifo_gap_contrast(benchmark):
    def run_pair():
        prio = run_contention_scenario(8, discipline="priority",
                                       duration=0.045, watch=False)
        fifo = run_contention_scenario(8, discipline="fifo",
                                       duration=0.045, watch=False)
        return prio.max_gap_ms(), fifo.max_gap_ms()

    prio_gap, fifo_gap = benchmark.pedantic(run_pair, rounds=1,
                                            iterations=1)
    emit("fig2_contrast", [
        f"m=8 priority max gap: {prio_gap:.2f} ms",
        f"m=8 FIFO     max gap: {fifo_gap:.2f} ms",
        "(paper: priority gaps ~8 ms; FIFO gaps well under 0.4 ms)"])
    assert fifo_gap < prio_gap / 4
