"""Unit tests for the packet/flow model."""

import pytest

from repro.simnet.packet import (DEFAULT_MSS, DEFAULT_MTU, HEADER_BYTES,
                                 PRIO_HIGH, PRIO_LOW, PROTO_TCP, PROTO_UDP,
                                 FlowKey, Packet, make_tcp, make_udp)


class TestFlowKey:
    def test_reversed_swaps_endpoints(self):
        key = FlowKey("a", "b", 10, 20, PROTO_TCP)
        rev = key.reversed()
        assert rev == FlowKey("b", "a", 20, 10, PROTO_TCP)
        assert rev.reversed() == key

    def test_protocol_predicates(self):
        tcp = FlowKey("a", "b", 1, 2, PROTO_TCP)
        udp = FlowKey("a", "b", 1, 2, PROTO_UDP)
        assert tcp.is_tcp and not tcp.is_udp
        assert udp.is_udp and not udp.is_tcp

    def test_pretty_format(self):
        key = FlowKey("h1", "h2", 100, 200, PROTO_UDP)
        assert key.pretty() == "udp:h1:100->h2:200"

    def test_hashable_for_dict_keys(self):
        key = FlowKey("a", "b", 1, 2, PROTO_TCP)
        same = FlowKey("a", "b", 1, 2, PROTO_TCP)
        assert {key: 1}[same] == 1


class TestPacket:
    def test_positive_size_required(self):
        key = FlowKey("a", "b", 1, 2, PROTO_UDP)
        with pytest.raises(ValueError):
            Packet(flow=key, size=0)

    def test_unique_ids(self):
        p1 = make_udp("a", "b", 1, 2, 100)
        p2 = make_udp("a", "b", 1, 2, 100)
        assert p1.pkt_id != p2.pkt_id

    def test_record_hop_accumulates(self):
        pkt = make_udp("a", "b", 1, 2, 100)
        pkt.record_hop("S1")
        pkt.record_hop("S2")
        assert pkt.hops == ["S1", "S2"]

    def test_src_dst_shortcuts(self):
        pkt = make_udp("src", "dst", 1, 2, 100)
        assert pkt.src == "src"
        assert pkt.dst == "dst"


class TestConstructors:
    def test_make_udp_defaults(self):
        pkt = make_udp("a", "b", 5, 6, 1500, priority=PRIO_HIGH)
        assert pkt.flow.proto == PROTO_UDP
        assert pkt.size == 1500
        assert pkt.priority == PRIO_HIGH
        assert pkt.payload_bytes == 1500 - HEADER_BYTES
        assert pkt.tcp is None

    def test_make_tcp_sizes_include_headers(self):
        pkt = make_tcp("a", "b", 5, 6, payload=1000, seq=42)
        assert pkt.size == 1000 + HEADER_BYTES
        assert pkt.payload_bytes == 1000
        assert pkt.tcp.seq == 42
        assert not pkt.tcp.is_ack

    def test_make_tcp_pure_ack(self):
        ack = make_tcp("b", "a", 6, 5, payload=0, ack=500, is_ack=True)
        assert ack.size == HEADER_BYTES
        assert ack.tcp.is_ack
        assert ack.tcp.ack == 500

    def test_mss_consistent_with_mtu(self):
        assert DEFAULT_MSS == DEFAULT_MTU - HEADER_BYTES

    def test_default_priority_low(self):
        assert make_udp("a", "b", 1, 2, 100).priority == PRIO_LOW
