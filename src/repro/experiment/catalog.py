"""Render ``docs/EXPERIMENTS.md`` from the experiment registry.

Same one-source-of-truth idiom as the scenario/sweep/fault catalogues:
the page and ``python -m repro.cli experiment list`` render identical
:class:`~repro.experiment.registry.ExperimentSpec` objects.  Refresh
with::

    python tools/gen_experiment_docs.py

A tier-1 test (and the CI docs job) asserts the checked-in page matches
this renderer's output.
"""

from __future__ import annotations

from .registry import EXPERIMENTS, ExperimentSpec
from .report import SCHEMA

_PREAMBLE = """\
# Experiments

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_experiment_docs.py -->

An *experiment* is a **run table**: one registered sweep
([SWEEPS.md](SWEEPS.md)) expanded across declared axes × N independent
repetitions, every `(point, rep)` cell executed with its own derived
seed, and the repetitions aggregated into per-point mean/min/max
**degradation curves**.  Where a sweep answers "does the diagnosis
hold at these settings, for this one seed?", an experiment answers
"*how often* does it hold, and where does it stop?" — the paper's
claims are curves (accuracy falling as clock skew crosses the ε bound,
as partial deployment thins coverage), and a curve needs statistical
weight behind every point.  Run one with

```sh
python -m repro.cli experiment run <name> [--grid axis=v1,v2,...]
                                          [--reps N] [--seed N]
```

and list the registered experiments with
`python -m repro.cli experiment list`.

## Seeds: collision-free by construction, stable under reordering

Every `(point, rep)` cell derives its seed by CRC32 over the cell's
*canonical form* — base seed, the axis values sorted by axis name, and
the repetition index — so reordering the axes in a spec cannot
silently re-seed a committed study.  Seeds are checked pairwise
distinct across the whole table at expansion time (a deterministic
salt bump separates the vanishingly-rare CRC collision), so no
repetition ever reuses another cell's randomness.  Any cell reproduces
bit-for-bit as a single run:
`python -m repro.cli run <scenario> --seed <seed> --knob key=value ...`
with the `seed` and `knobs` recorded in its run artifact.

## Resumable artifact directories

`experiment run` owns one directory per study (default
`results/experiments/<name>/`):

```
manifest.json            # table identity: seed, grid, reps
runs/point000_rep00.json # one document per completed (point, rep)
report.json              # the aggregated ExperimentReport
```

Each run document lands atomically as it finishes.  Re-invoking the
same study skips every intact run document (verified against the
table's seed and params — a foreign artifact fails loudly) and
executes only the missing cells; because the report aggregates only
seed-determined fields (wall-clock timings stay in the per-run
artifacts), a study interrupted after K of N runs resumes to a
`report.json` **byte-identical** to an uninterrupted one.

## Report schema (`{schema}`)

| field | meaning |
|---|---|
| `schema` | schema id, currently `{schema}` |
| `experiment`, `sweep`, `scenario` | what ran |
| `expect_problem` | the analyzer verdict that counts as correct |
| `base_seed`, `reps`, `grid` | reproduction identity |
| `runs[]` | one entry per `(point, rep)` cell: seed, ok, verdicts, sim time, pending faults |
| `points[]` | per-point aggregates: `accuracy`/`sim_time_s` mean-min-max across reps, error and pending-fault counts |
| `summary` | run/ok/error/pending counts and mean accuracy across the table |

`repro.experiment.validate_experiment_report` checks the structure
(unknown fields rejected, aggregate consistency enforced) before any
report is written or plotted.  Faults scheduled past a run's window
surface as `pending` in the run's fault plan and are **counted** by
aggregation, never silently dropped — a mis-specified fault schedule
shows up in the report instead of vanishing.

## Figures

`python tools/plot_experiments.py` renders each committed
`report.json` into a deterministic SVG degradation curve under
`results/figures/` (mean accuracy per point, min–max envelope across
repetitions, analytic boundary annotated).  `--check` verifies the
committed figures match the committed reports byte-for-byte — the same
regenerate-and-compare contract as the generated docs.

## The nightly driver

```sh
python -m repro.cli experiment nightly [--out-dir DIR] [--workers N]
                                       [--seed N] [--only NAME ...]
```

runs **every registered experiment** at its declared table and writes
one artifact directory per experiment — the registry-driven pattern
the sweep nightly uses, so a new experiment joins the scheduled CI run
(and its report upload) automatically.  Exit status is non-zero only
if runs *errored*; a stressed point misdiagnosing is the measurement,
not a failure.
"""


def _spec_markdown(spec: ExperimentSpec) -> str:
    points = 1
    for values in spec.axes.values():
        points *= len(values)
    lines = [f"## `{spec.name}`", "", spec.summary, ""]
    lines.append(f"- **Sweep:** `{spec.sweep}` (see SWEEPS.md)")
    lines.append(
        f"- **Run table:** {points} point(s) × {spec.reps} repetitions "
        f"= {points * spec.reps} seeded runs"
    )
    if spec.base_knobs:
        pinned = ", ".join(
            f"`{k}={v!r}`" for k, v in sorted(spec.base_knobs.items())
        )
        lines.append(f"- **Knob overrides:** {pinned}")
    if spec.figure is not None:
        fig = spec.figure
        note = f"`results/figures/{spec.name}.svg` — {fig.title}"
        if fig.vline is not None:
            note += f" (boundary at {fig.x_axis}={fig.vline:g})"
        lines.append(f"- **Figure:** {note}")
    lines.append(f"- **Run:** `{spec.cli_example}`")
    lines.append("")
    lines.append("| axis | values |")
    lines.append("|---|---|")
    for axis, values in spec.axes.items():
        lines.append(f"| `{axis}` | {','.join(str(v) for v in values)} |")
    return "\n".join(lines) + "\n"


def experiments_markdown() -> str:
    """The full ``docs/EXPERIMENTS.md`` body."""
    sections = [_PREAMBLE.replace("{schema}", SCHEMA)]
    sections.extend(_spec_markdown(spec) for spec in EXPERIMENTS.specs())
    return "\n".join(sections)
