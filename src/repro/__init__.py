"""repro — a reproduction of SwitchPointer (NSDI 2018).

SwitchPointer integrates end-host telemetry collection with in-network
visibility by using switch memory as a *directory service*: switches
store per-epoch pointers (one bit per end-host, indexed by a minimal
perfect hash) to the hosts holding relevant telemetry, arranged in a
k-level hierarchy over exponentially growing time windows.

Quick start::

    from repro import SwitchPointerDeployment
    from repro.simnet import build_linear

    net = build_linear(n_switches=3, hosts_per_switch=2)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3)
    # ... start traffic, run the simulator, then debug:
    # verdict = diagnose_contention(deploy.analyzer, deploy.alerts()[0])

Packages
--------
:mod:`repro.core`      the paper's data structures (MPHF, pointers, epochs)
:mod:`repro.simnet`    discrete-event network simulator substrate
:mod:`repro.switchd`   switch datapath + control-plane agent
:mod:`repro.hostd`     end-host telemetry (PathDump extended)
:mod:`repro.analyzer`  coordination + the four §5 debugging apps
:mod:`repro.baselines` PathDump and in-network comparison points
:mod:`repro.rpc`       latency-modelled control-plane RPC
"""

from .deployment import SwitchPointerDeployment, DEFAULT_ALPHA_MS, DEFAULT_K

__version__ = "1.0.0"

__all__ = ["SwitchPointerDeployment", "DEFAULT_ALPHA_MS", "DEFAULT_K",
           "__version__"]
