"""Array-backed end-host record storage (the ``columnar`` backend).

:class:`ColumnarRecordStore` keeps one host's flow records as parallel
numpy columns instead of per-flow Python objects: byte/packet counts,
priority, creation sequence, update watermark and first/last-seen
timestamps each live in one contiguous ``int64``/``float64`` array
indexed by *row*.  The irregular per-flow telemetry (switch path, the
per-switch epoch ranges of §4.2.1, per-epoch byte counts) stays in
per-row containers of plain ints — there is no object-per-packet or
object-per-range churn on the ingest path.

The per-switch inverted index is columnar too: for every switchID an
:class:`_SwitchIndex` holds ``(row, lo, hi, seq)`` arrays kept sorted by
``(lo, seq)`` lazily, so the §3 ``(switchID, epochID)`` header filter is
one ``searchsorted`` bisect plus a vectorized ``hi >= lo`` mask instead
of a Python loop.  Appends and range widenings are O(1) in-place array
writes (batched index maintenance); the sort is re-established at most
once per query round.

Equivalence contract — checked by
``tests/property/test_columnar_equivalence.py`` against the retained
object-based reference (:class:`~repro.hostd.records.FlowRecordStore`):

* same ingest/query/spill/reload API, same counters;
* query results are byte-identical, **including** ``records_scanned``
  (the RPC latency model charges for it, so the index compacts stale
  entries away before counting a bisect cut);
* eviction picks the same victims in the same spill order (vectorized
  ``(last_seen, seq)`` staleness instead of a heap);
* :meth:`ColumnarRecordStore.ingest_batch` folds a decoded-packet batch
  group-by-flow and is exactly equivalent to ``begin_batch()`` +
  per-packet ``ingest()`` + ``end_batch()`` — unions are associative,
  first/last/priority pick first/last packets, and the per-flow update
  watermark is the batch-relative index of the flow's last packet.

Records handed out by queries are :class:`ColumnarRecordView` flyweights
reading straight from the columns; evicting or superseding a row freezes
any outstanding view so it keeps the dead record's telemetry, the same
lifetime a detached ``FlowRecord`` object has.
"""

from __future__ import annotations

import heapq
import json
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Optional

import numpy as np

from ..core.epoch import EpochRange
from ..simnet.packet import FlowKey
from .backends import register_backend
from .records import SeqCounter

#: one decoded packet, as produced by ``TelemetryDecoder.decode_batch``:
#: (flow, nbytes, t, priority, switch_path, pairs, observed_epoch) —
#: epoch ranges travel as plain ``{switch: (lo, hi)}`` int pairs so the
#: batch path never touches per-packet EpochRange objects
IngestEntry = tuple[
    FlowKey,
    int,
    float,
    int,
    list[str],
    dict[str, tuple[int, int]],
    Optional[int],
]


class _SwitchIndex:
    """Per-switch ``(row, lo, hi, seq)`` columns, lazily (lo, seq)-sorted.

    ``pos`` maps live row → array slot and is authoritative for
    membership; removals only tombstone the slot (``row = -1``) and are
    compacted away on the next :meth:`prepare`, so eviction stays O(1)
    per entry.  ``sort_dirty`` is set only when an append or a ``lo``
    move actually breaks the sort, keeping the common
    monotonically-appending workload sort-free.
    """

    __slots__ = ("rows", "los", "his", "seqs", "n", "cap", "pos", "n_stale", "sort_dirty")

    def __init__(self) -> None:
        self.cap = 16
        self.rows = np.empty(self.cap, np.int64)
        self.los = np.empty(self.cap, np.int64)
        self.his = np.empty(self.cap, np.int64)
        self.seqs = np.empty(self.cap, np.int64)
        self.n = 0
        self.pos: dict[int, int] = {}
        self.n_stale = 0
        self.sort_dirty = False

    def _grow(self) -> None:
        new_cap = self.cap * 2
        for name in ("rows", "los", "his", "seqs"):
            arr = np.empty(new_cap, np.int64)
            arr[: self.n] = getattr(self, name)[: self.n]
            setattr(self, name, arr)
        self.cap = new_cap

    def add(self, row: int, lo: int, hi: int, seq: int) -> None:
        if self.n == self.cap:
            self._grow()
        i = self.n
        self.rows[i] = row
        self.los[i] = lo
        self.his[i] = hi
        self.seqs[i] = seq
        self.pos[row] = i
        self.n = i + 1
        if i and not self.sort_dirty:
            plo = self.los[i - 1]
            if lo < plo or (lo == plo and seq < self.seqs[i - 1]):
                self.sort_dirty = True

    def update(self, row: int, lo: int, hi: int, *, lo_moved: bool) -> None:
        i = self.pos[row]
        self.los[i] = lo
        self.his[i] = hi
        if lo_moved:
            self.sort_dirty = True

    def remove(self, row: int) -> None:
        i = self.pos.pop(row, None)
        if i is not None:
            self.rows[i] = -1
            self.n_stale += 1

    def prepare(self) -> None:
        """Compact tombstones away, then re-establish the (lo, seq) sort."""
        n = self.n
        if self.n_stale:
            mask = self.rows[:n] >= 0
            k = int(mask.sum())
            for name in ("rows", "los", "his", "seqs"):
                arr = getattr(self, name)
                arr[:k] = arr[:n][mask]
            self.n = n = k
            self.n_stale = 0
            self.pos = {int(r): i for i, r in enumerate(self.rows[:k])}
        if self.sort_dirty:
            order = np.lexsort((self.seqs[:n], self.los[:n]))
            for name in ("rows", "los", "his", "seqs"):
                arr = getattr(self, name)
                arr[:n] = arr[:n][order]
            self.pos = {int(r): i for i, r in enumerate(self.rows[:n])}
            self.sort_dirty = False


class ColumnarRecordView:
    """Record-shaped window onto one row of a :class:`ColumnarRecordStore`.

    Exposes the :class:`~repro.hostd.records.FlowRecord` read surface
    (``flow``/``bytes``/``packets``/``priority``/``first_seen``/
    ``last_seen``/``switch_path``/``epoch_ranges``/``bytes_by_epoch``,
    ``epochs_at``/``traversed``/``to_json`` and the ``_seq``/
    ``_update_seq`` ordering keys) by reading the live columns.  When
    the underlying row is evicted, superseded or dropped, the store
    freezes the view first — it then serves the dead record's telemetry
    forever, like a detached record object would.
    """

    __slots__ = ("_cstore", "_row", "_frozen")

    def __init__(self, store: "ColumnarRecordStore", row: int) -> None:
        self._cstore = store
        self._row = row
        self._frozen: Optional[dict[str, Any]] = None

    def _freeze(self) -> None:
        if self._frozen is not None:
            return
        s = self._cstore
        row = self._row
        first = s._first[row]
        last = s._last[row]
        self._frozen = {
            "flow": s._flows[row],
            "switch_path": list(s._paths[row]),
            "epoch_ranges": dict(s._eps[row]),
            "bytes_by_epoch": dict(s._bbe[row]),
            "packets": int(s._packets[row]),
            "bytes": int(s._bytes[row]),
            "priority": int(s._priority[row]),
            "first_seen": None if np.isnan(first) else float(first),
            "last_seen": None if np.isnan(last) else float(last),
            "seq": int(s._seq_col[row]),
            "update_seq": int(s._upd_col[row]),
        }

    @property
    def flow(self) -> FlowKey:
        f = self._frozen
        if f is not None:
            return f["flow"]
        return self._cstore._flows[self._row]

    @property
    def bytes(self) -> int:
        f = self._frozen
        if f is not None:
            return f["bytes"]
        return int(self._cstore._bytes[self._row])

    @property
    def packets(self) -> int:
        f = self._frozen
        if f is not None:
            return f["packets"]
        return int(self._cstore._packets[self._row])

    @property
    def priority(self) -> int:
        f = self._frozen
        if f is not None:
            return f["priority"]
        return int(self._cstore._priority[self._row])

    @property
    def first_seen(self) -> Optional[float]:
        f = self._frozen
        if f is not None:
            return f["first_seen"]
        v = self._cstore._first[self._row]
        return None if np.isnan(v) else float(v)

    @property
    def last_seen(self) -> Optional[float]:
        f = self._frozen
        if f is not None:
            return f["last_seen"]
        v = self._cstore._last[self._row]
        return None if np.isnan(v) else float(v)

    @property
    def switch_path(self) -> list[str]:
        f = self._frozen
        if f is not None:
            return list(f["switch_path"])
        return list(self._cstore._paths[self._row])

    def _pairs(self) -> dict[str, tuple[int, int]]:
        f = self._frozen
        if f is not None:
            return f["epoch_ranges"]
        return self._cstore._eps[self._row]

    @property
    def epoch_ranges(self) -> dict[str, EpochRange]:
        return {sw: EpochRange(lo, hi) for sw, (lo, hi) in self._pairs().items()}

    @property
    def bytes_by_epoch(self) -> dict[int, int]:
        f = self._frozen
        if f is not None:
            return dict(f["bytes_by_epoch"])
        return dict(self._cstore._bbe[self._row])

    @property
    def _seq(self) -> int:
        f = self._frozen
        if f is not None:
            return f["seq"]
        return int(self._cstore._seq_col[self._row])

    @property
    def _update_seq(self) -> int:
        f = self._frozen
        if f is not None:
            return f["update_seq"]
        return int(self._cstore._upd_col[self._row])

    def epochs_at(self, switch: str) -> Optional[EpochRange]:
        pair = self._pairs().get(switch)
        return EpochRange(pair[0], pair[1]) if pair else None

    def traversed(self, switch: str) -> bool:
        return switch in self._pairs()

    def to_json(self) -> dict:
        f = self._frozen
        if f is None:
            return self._cstore._row_json(self._row)
        return {
            "flow": list(f["flow"]),
            "switch_path": list(f["switch_path"]),
            "epoch_ranges": {
                sw: [lo, hi] for sw, (lo, hi) in f["epoch_ranges"].items()
            },
            "bytes_by_epoch": {
                str(e): b for e, b in f["bytes_by_epoch"].items()
            },
            "packets": f["packets"],
            "bytes": f["bytes"],
            "priority": f["priority"],
            "first_seen": f["first_seen"],
            "last_seen": f["last_seen"],
        }

    def __repr__(self) -> str:
        return (
            f"ColumnarRecordView(flow={self.flow!r}, bytes={self.bytes}, "
            f"packets={self.packets}, priority={self.priority})"
        )


class ColumnarRecordStore:
    """Per-host record table on parallel numpy columns, flat-equivalent.

    Drop-in for :class:`~repro.hostd.records.FlowRecordStore` everywhere
    the host agent, query engine and triggers touch it: same ingest
    entry points (plus the batched :meth:`ingest_batch` fast path), same
    query methods, same spill/reload/crash semantics, same counters.
    """

    def __init__(
        self,
        host_name: str,
        spill_path: Optional[Path] = None,
        max_records: Optional[int] = None,
        seq_counter: Optional[SeqCounter] = None,
    ):
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.host_name = host_name
        self.spill_path = Path(spill_path) if spill_path else None
        self.max_records = max_records
        self._seq = seq_counter if seq_counter is not None else SeqCounter()
        self._cap = 64
        self._n = 0
        self._free: list[int] = []
        #: flow → row, in record-creation (= flat-table insertion) order
        self._rows: dict[FlowKey, int] = {}
        self._bytes = np.zeros(self._cap, np.int64)
        self._packets = np.zeros(self._cap, np.int64)
        self._priority = np.zeros(self._cap, np.int64)
        self._seq_col = np.zeros(self._cap, np.int64)
        self._upd_col = np.zeros(self._cap, np.int64)
        self._first = np.full(self._cap, np.nan)
        self._last = np.full(self._cap, np.nan)
        #: per-row irregular telemetry (plain ints, no EpochRange objects)
        self._flows: list[FlowKey] = []
        self._paths: list[tuple[str, ...]] = []
        self._eps: list[dict[str, tuple[int, int]]] = []
        self._bbe: list[dict[int, int]] = []
        self._index: dict[str, _SwitchIndex] = {}
        self._views: dict[int, ColumnarRecordView] = {}
        self._deferring = False
        #: read-side hook, same contract as the flat store's
        self.before_read: Optional[Callable[[], object]] = None
        self.peak_records = 0
        self.spilled = 0
        self.evicted = 0
        #: decoded packets folded into the table (ingest throughput)
        self.ingested = 0

    # -- row allocation ------------------------------------------------------

    def _grow(self) -> None:
        new_cap = self._cap * 2
        for name in ("_bytes", "_packets", "_priority", "_seq_col", "_upd_col"):
            arr = np.zeros(new_cap, np.int64)
            arr[: self._cap] = getattr(self, name)
            setattr(self, name, arr)
        for name in ("_first", "_last"):
            arr = np.full(new_cap, np.nan)
            arr[: self._cap] = getattr(self, name)
            setattr(self, name, arr)
        self._cap = new_cap

    def _alloc_row(self, flow: FlowKey) -> int:
        """A fresh (or recycled) row for ``flow``: no bound check here."""
        if self._free:
            row = self._free.pop()
            self._flows[row] = flow
        else:
            row = self._n
            if row == self._cap:
                self._grow()
            self._n = row + 1
            self._flows.append(flow)
            self._paths.append(())
            self._eps.append({})
            self._bbe.append({})
        self._bytes[row] = 0
        self._packets[row] = 0
        self._priority[row] = 0
        self._seq_col[row] = self._seq.take()
        self._upd_col[row] = 0
        self._first[row] = np.nan
        self._last[row] = np.nan
        self._rows[flow] = row
        return row

    def _row_for(self, flow: FlowKey) -> int:
        """Row of ``flow``, creating one (flat ``record_for`` semantics)."""
        row = self._rows.get(flow)
        if row is None:
            row = self._alloc_row(flow)
            if len(self._rows) > self.peak_records:
                self.peak_records = len(self._rows)
            if (
                self.max_records is not None
                and not self._deferring
                and len(self._rows) > self.max_records
            ):
                self._evict()
        return row

    def record_for(self, flow: FlowKey) -> ColumnarRecordView:
        return self._view(self._row_for(flow))

    def _view(self, row: int) -> ColumnarRecordView:
        v = self._views.get(row)
        if v is None:
            v = ColumnarRecordView(self, row)
            self._views[row] = v
        return v

    def _detach_view(self, row: int) -> None:
        v = self._views.pop(row, None)
        if v is not None:
            v._freeze()

    def _index_for(self, switch: str) -> _SwitchIndex:
        idx = self._index.get(switch)
        if idx is None:
            idx = self._index[switch] = _SwitchIndex()
        return idx

    # -- ingest --------------------------------------------------------------

    def begin_batch(self) -> None:
        """Defer eviction checks until :meth:`end_batch` (flat contract)."""
        self._deferring = True

    def end_batch(self) -> None:
        self._deferring = False
        if self.max_records is not None and len(self._rows) > self.max_records:
            self._evict()

    def ingest(
        self,
        flow: FlowKey,
        *,
        nbytes: int,
        t: float,
        priority: int,
        switch_path: list[str],
        ranges: dict[str, EpochRange],
        observed_epoch: Optional[int],
    ) -> ColumnarRecordView:
        """One decoded packet → record update (decoder entry point)."""
        self.ingested += 1
        row = self._row_for(flow)
        self._upd_col[row] = self.ingested
        self._packets[row] += 1
        self._bytes[row] += nbytes
        self._priority[row] = priority
        if np.isnan(self._first[row]):
            self._first[row] = t
        self._last[row] = t
        if switch_path:
            self._paths[row] = tuple(switch_path)
        eps = self._eps[row]
        seq = int(self._seq_col[row])
        for sw, rng in ranges.items():
            cur = eps.get(sw)
            if cur is None:
                pair = (rng.lo, rng.hi)
                eps[sw] = pair
                self._index_for(sw).add(row, pair[0], pair[1], seq)
            else:
                lo, hi = cur
                nlo = rng.lo if rng.lo < lo else lo
                nhi = rng.hi if rng.hi > hi else hi
                if nlo != lo or nhi != hi:
                    eps[sw] = (nlo, nhi)
                    self._index_for(sw).update(
                        row, nlo, nhi, lo_moved=nlo != lo
                    )
        if observed_epoch is not None:
            bbe = self._bbe[row]
            bbe[observed_epoch] = bbe.get(observed_epoch, 0) + nbytes
        return self._view(row)

    def ingest_batch(self, entries: Iterable[IngestEntry]) -> int:
        """Fold a batch of decoded packets, grouped by flow (fast path).

        Exactly equivalent to ``begin_batch()`` + per-packet
        :meth:`ingest` of each entry (with its pairs as
        ``EpochRange``s) + ``end_batch()``: per-flow aggregates commute
        with per-packet folding (byte/packet sums, first/last
        timestamps, last priority, last non-empty path, epoch-range
        unions, per-epoch byte sums), row creation follows first
        appearance so creation sequence matches, and each flow's update
        watermark is the batch index of its last packet.  A packet
        whose ``pairs`` dict *is* the previous one for its flow (the
        decoder memoizes parses within a flush) skips the merge loop
        entirely — identity implies equality implies an already-absorbed
        union.  Returns the number of packets folded.
        """
        groups: dict[FlowKey, list] = {}
        get = groups.get
        count = 0
        for flow, nbytes, t, priority, path, pairs, epoch in entries:
            count += 1
            g = get(flow)
            if g is None:
                be: dict[int, int] = {}
                if epoch is not None:
                    be[epoch] = nbytes
                groups[flow] = [
                    nbytes, 1, t, t, priority,
                    path if path else None, dict(pairs), be, count,
                    pairs,
                ]
            else:
                g[0] += nbytes
                g[1] += 1
                g[3] = t
                g[4] = priority
                if path:
                    g[5] = path
                if pairs is not g[9]:
                    rd = g[6]
                    for sw, pair in pairs.items():
                        cur = rd.get(sw)
                        if cur is None:
                            rd[sw] = pair
                        elif pair != cur:
                            lo, hi = pair
                            clo, chi = cur
                            if lo < clo or hi > chi:
                                rd[sw] = (
                                    lo if lo < clo else clo,
                                    hi if hi > chi else chi,
                                )
                    g[9] = pairs
                if epoch is not None:
                    be = g[7]
                    be[epoch] = be.get(epoch, 0) + nbytes
                g[8] = count
        return self.apply_groups(groups, count)

    def apply_groups(self, groups: dict[FlowKey, list], count: int) -> int:
        """Apply per-flow groups built by the :meth:`ingest_batch` loop.

        The vectorized tail of the batched fast path, split out so the
        decoder's fused ``flush_batch`` (which builds the same group
        lists while decoding, skipping the per-packet entry tuples) can
        share it.  ``count`` is the number of packets folded into
        ``groups``; callers must not reuse a groups dict.
        """
        if not count:
            return 0
        base = self.ingested
        prev_defer = self._deferring
        self._deferring = True
        # row allocation first: _grow() may reallocate the columns, so
        # every column reference below is taken after the last _row_for
        row_for = self._row_for
        row_list = [row_for(flow) for flow in groups]
        n = len(row_list)
        rows = np.fromiter(row_list, dtype=np.int64, count=n)
        gvals = list(groups.values())
        # scatter the scalar columns in one shot per column — rows are
        # unique (one group per flow), so fancy-index += is exact
        self._upd_col[rows] = base + np.fromiter(
            (g[8] for g in gvals), dtype=np.int64, count=n
        )
        self._bytes[rows] += np.fromiter(
            (g[0] for g in gvals), dtype=np.int64, count=n
        )
        self._packets[rows] += np.fromiter(
            (g[1] for g in gvals), dtype=np.int64, count=n
        )
        self._priority[rows] = np.fromiter(
            (g[4] for g in gvals), dtype=np.int64, count=n
        )
        first_col = self._first
        nan_mask = np.isnan(first_col[rows])
        if nan_mask.any():
            first_col[rows[nan_mask]] = np.fromiter(
                (g[2] for g in gvals), dtype=np.float64, count=n
            )[nan_mask]
        self._last[rows] = np.fromiter(
            (g[3] for g in gvals), dtype=np.float64, count=n
        )
        seqs = self._seq_col[rows].tolist()
        paths = self._paths
        all_eps = self._eps
        all_bbe = self._bbe
        index_for = self._index_for
        for i, g in enumerate(gvals):
            row = row_list[i]
            if g[5] is not None:
                paths[row] = tuple(g[5])
            eps = all_eps[row]
            seq = seqs[i]
            for sw, pair in g[6].items():
                cur = eps.get(sw)
                if cur is None:
                    eps[sw] = pair
                    index_for(sw).add(row, pair[0], pair[1], seq)
                else:
                    lo, hi = cur
                    nlo = pair[0] if pair[0] < lo else lo
                    nhi = pair[1] if pair[1] > hi else hi
                    if nlo != lo or nhi != hi:
                        eps[sw] = (nlo, nhi)
                        index_for(sw).update(
                            row, nlo, nhi, lo_moved=nlo != lo
                        )
            if g[7]:
                bbe = all_bbe[row]
                for e, b in g[7].items():
                    bbe[e] = bbe.get(e, 0) + b
        self.ingested = base + count
        self._deferring = prev_defer
        if (
            not prev_defer
            and self.max_records is not None
            and len(self._rows) > self.max_records
        ):
            self._evict()
        return count

    # -- eviction ------------------------------------------------------------

    def _evict(self, *, spill: bool = True) -> None:
        """Spill/drop stalest rows until under the bound (vectorized)."""
        assert self.max_records is not None
        excess = len(self._rows) - self.max_records
        if excess <= 0:
            return
        live = np.fromiter(
            self._rows.values(), dtype=np.int64, count=len(self._rows)
        )
        stale = self._last[live]
        stale = np.where(np.isnan(stale), np.inf, stale)
        order = np.lexsort((self._seq_col[live], stale))
        victims = live[order[:excess]]
        self._drop_rows([int(r) for r in victims], spill=spill)

    def _drop_rows(self, rows: list[int], *, spill: bool = True) -> None:
        """Spill (optionally) then unindex+free the given rows."""
        if spill and self.spill_path is not None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            with self.spill_path.open("a", encoding="utf-8") as fh:
                for row in rows:
                    fh.write(json.dumps(self._row_json(row)) + "\n")
                    self.spilled += 1
        for row in rows:
            del self._rows[self._flows[row]]
            for sw in self._eps[row]:
                idx = self._index.get(sw)
                if idx is not None:
                    idx.remove(row)
            self._detach_view(row)
            self._paths[row] = ()
            self._eps[row] = {}
            self._bbe[row] = {}
            self._free.append(row)
            self.evicted += 1

    def drop_all(self) -> int:
        """Lose every in-memory record without spilling (crash loss)."""
        lost = len(self._rows)
        for row in list(self._views):
            self._detach_view(row)
        self._rows.clear()
        self._index.clear()
        self._free.clear()
        self._flows.clear()
        self._paths.clear()
        self._eps.clear()
        self._bbe.clear()
        self._n = 0
        return lost

    # -- lookup / iteration --------------------------------------------------

    def _notify_read(self) -> None:
        if self.before_read is not None:
            self.before_read()

    def get(self, flow: FlowKey) -> Optional[ColumnarRecordView]:
        self._notify_read()
        row = self._rows.get(flow)
        return self._view(row) if row is not None else None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[ColumnarRecordView]:
        """All records, in flat-table insertion order."""
        return (self._view(row) for row in list(self._rows.values()))

    # -- the §3 header filter ------------------------------------------------

    def flows_through(
        self, switch: str, epochs: Optional[EpochRange] = None
    ) -> list[ColumnarRecordView]:
        """Records whose path crossed ``switch`` (in ``epochs``, if given)."""
        return self.scan_through(switch, epochs)[0]

    def scan_through(
        self,
        switch: str,
        epochs: Optional[EpochRange] = None,
        *,
        since_seq: Optional[int] = None,
    ) -> tuple[list[ColumnarRecordView], int]:
        """Vectorized indexed scan; same results + cost as the flat store."""
        self._notify_read()
        return self._scan_impl(switch, epochs, since_seq)

    def _scan_impl(
        self,
        switch: str,
        epochs: Optional[EpochRange],
        since_seq: Optional[int],
    ) -> tuple[list[ColumnarRecordView], int]:
        idx = self._index.get(switch)
        if idx is None or not idx.pos:
            return [], 0
        idx.prepare()
        n = idx.n
        if epochs is None:
            order = np.argsort(idx.seqs[:n], kind="stable")
            rows = idx.rows[:n][order]
            if since_seq is not None:
                rows = rows[self._upd_col[rows] > since_seq]
            return [self._view(int(r)) for r in rows], n
        cut = int(np.searchsorted(idx.los[:n], epochs.hi, side="right"))
        if cut == 0:
            return [], 0
        mask = idx.his[:cut] >= epochs.lo
        if since_seq is not None:
            mask &= self._upd_col[idx.rows[:cut]] > since_seq
        sel = np.nonzero(mask)[0]
        order = np.argsort(idx.seqs[:cut][sel], kind="stable")
        rows = idx.rows[:cut][sel][order]
        return [self._view(int(r)) for r in rows], cut

    def topk_through(
        self,
        k: int,
        key: Callable[[ColumnarRecordView], object],
        switch: str,
        epochs: Optional[EpochRange] = None,
    ) -> tuple[list[ColumnarRecordView], int]:
        """Bounded-heap top-k over the indexed scan (sharded-store API)."""
        self._notify_read()
        matches, scanned = self._scan_impl(switch, epochs, None)
        return heapq.nsmallest(k, matches, key=key), scanned

    def linear_flows_through(
        self, switch: str, epochs: Optional[EpochRange] = None
    ) -> list[ColumnarRecordView]:
        """Reference O(N) scan (equivalence oracle, not the query path)."""
        out = []
        for row in self._rows.values():
            pair = self._eps[row].get(switch)
            if pair is None:
                continue
            if epochs is not None and not (
                pair[0] <= epochs.hi and epochs.lo <= pair[1]
            ):
                continue
            out.append(self._view(row))
        return out

    # -- MongoDB-substitute spill --------------------------------------------

    def _row_json(self, row: int) -> dict:
        """Flat-identical JSON document for one row (spill format)."""
        first = self._first[row]
        last = self._last[row]
        return {
            "flow": list(self._flows[row]),
            "switch_path": list(self._paths[row]),
            "epoch_ranges": {
                sw: [lo, hi] for sw, (lo, hi) in self._eps[row].items()
            },
            "bytes_by_epoch": {
                str(e): b for e, b in self._bbe[row].items()
            },
            "packets": int(self._packets[row]),
            "bytes": int(self._bytes[row]),
            "priority": int(self._priority[row]),
            "first_seen": None if np.isnan(first) else float(first),
            "last_seen": None if np.isnan(last) else float(last),
        }

    def flush_to_disk(self) -> int:
        """Append all in-memory records to the JSON-lines spill file."""
        if self.spill_path is None:
            raise RuntimeError("no spill path configured")
        self.spill_path.parent.mkdir(parents=True, exist_ok=True)
        with self.spill_path.open("a", encoding="utf-8") as fh:
            for row in self._rows.values():
                fh.write(json.dumps(self._row_json(row)) + "\n")
                self.spilled += 1
        return self.spilled

    @classmethod
    def load_from_disk(
        cls,
        host_name: str,
        spill_path: Path,
        *,
        max_records: Optional[int] = None,
    ) -> "ColumnarRecordStore":
        """Rebuild a store from a spill file (flat supersede semantics)."""
        store = cls(host_name, spill_path=spill_path, max_records=max_records)
        with Path(spill_path).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                store._adopt_json_line(line)
        store.peak_records = max(store.peak_records, len(store._rows))
        if max_records is not None:
            store._evict(spill=False)
        return store

    def _adopt_json_line(self, line: str) -> None:
        """Replay one spill-file line into the table (reload path)."""
        self._adopt_doc(json.loads(line))

    def _adopt_doc(self, doc: dict) -> bool:
        """Adopt a spilled document; True when its flow is new here.

        A later spill of the same flow supersedes the earlier one,
        keeping its row (and so its creation seq and table position).
        """
        flow = FlowKey(*doc["flow"])
        row = self._rows.get(flow)
        new = row is None
        if row is None:
            row = self._alloc_row(flow)
        else:
            self._detach_view(row)
            for sw in self._eps[row]:
                idx = self._index.get(sw)
                if idx is not None:
                    idx.remove(row)
        self._bytes[row] = doc["bytes"]
        self._packets[row] = doc["packets"]
        self._priority[row] = doc["priority"]
        fs = doc["first_seen"]
        self._first[row] = np.nan if fs is None else fs
        ls = doc["last_seen"]
        self._last[row] = np.nan if ls is None else ls
        self._upd_col[row] = 0
        self._paths[row] = tuple(doc["switch_path"])
        eps = {sw: (lo, hi) for sw, (lo, hi) in doc["epoch_ranges"].items()}
        self._eps[row] = eps
        self._bbe[row] = {int(e): b for e, b in doc["bytes_by_epoch"].items()}
        seq = int(self._seq_col[row])
        for sw, (lo, hi) in eps.items():
            self._index_for(sw).add(row, lo, hi, seq)
        return new


@register_backend(
    "columnar",
    summary="array-backed ColumnarRecordStore, vectorized epoch bisect",
)
def _columnar_factory(
    host_name: str,
    spill_path: Optional[Path],
    max_records: Optional[int],
    record_shards: int,
) -> ColumnarRecordStore:
    # record_shards is a placement knob for the sharded backend only;
    # the columnar layout has no shards to place into
    return ColumnarRecordStore(
        host_name, spill_path=spill_path, max_records=max_records
    )
