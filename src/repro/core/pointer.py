"""Pointer sets and the hierarchical pointer store (§4.1.1–§4.1.2).

A *pointer set* is a bit array with one bit per end-host slot (slot =
MPHF(destination)).  Bit set ⇒ "this switch forwarded at least one
packet to that end-host during this set's time window" — the directory
entry that later tells the analyzer where telemetry lives.

The *hierarchical store* keeps k levels of pointer sets over
exponentially growing windows (epoch duration α ms):

* level h ∈ [1, k−1]: α sets, each covering αʰ ms (= αʰ⁻¹ epochs);
  together they span αʰ⁺¹ ms,
* level k (top): a single set covering αᵏ ms, pushed to the control
  plane every αᵏ ms for persistent storage (offline diagnosis).

Updates are O(k) bit-sets off one shared slot index — the "one hash
operation per packet, same index across all levels" property the MPHF
buys (§4.1.2).  Sets rotate lazily: a set is reset only when a packet
first touches its reused window, so an un-overwritten set remains
queryable for its *old* window (tag-validated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

_BIT_MASKS = [1 << i for i in range(8)]


class PointerSet:
    """Fixed-size bit array over end-host slots.

    Doubles as the ``exact`` directory backend (see
    :mod:`repro.directory`): it implements the full ``DirectorySet``
    surface with zero false positives, and is the reference every
    sketch backend is pinned against.
    """

    #: registry name under which this set type answers queries
    backend_name = "exact"

    __slots__ = ("n_slots", "_bits", "popcount")

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise ValueError("need at least one slot")
        self.n_slots = n_slots
        self._bits = bytearray((n_slots + 7) // 8)
        self.popcount = 0

    def set_slot(self, slot: int) -> None:
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.n_slots})")
        byte, bit = slot >> 3, slot & 7
        if not self._bits[byte] & _BIT_MASKS[bit]:
            self._bits[byte] |= _BIT_MASKS[bit]
            self.popcount += 1

    def test_slot(self, slot: int) -> bool:
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.n_slots})")
        return bool(self._bits[slot >> 3] & _BIT_MASKS[slot & 7])

    def clear(self) -> None:
        for i in range(len(self._bits)):
            self._bits[i] = 0
        self.popcount = 0

    def iter_slots(self) -> Iterator[int]:
        """Yield the indices of all set bits, ascending."""
        for byte_idx, byte in enumerate(self._bits):
            if not byte:
                continue
            base = byte_idx << 3
            for bit in range(8):
                if byte & _BIT_MASKS[bit]:
                    slot = base + bit
                    if slot < self.n_slots:
                        yield slot

    def union_into(self, other: "PointerSet") -> None:
        """OR this set's bits into ``other`` (same size required).

        Incremental popcount: only the bits this union *newly* sets are
        counted (``merged ^ theirs``), instead of re-scanning the whole
        result array — this sits on the per-epoch coalescing hot path,
        where the old full recount dominated at 65k slots.  The OR
        itself runs as one big-int operation (C loop, not a Python
        per-byte loop).
        """
        if other.n_slots != self.n_slots:
            raise ValueError("pointer sets differ in size")
        mine = int.from_bytes(self._bits, "little")
        if not mine:
            return
        theirs = int.from_bytes(other._bits, "little")
        merged = mine | theirs
        if merged != theirs:
            other._bits[:] = merged.to_bytes(len(other._bits), "little")
            other.popcount += (merged ^ theirs).bit_count()

    def copy(self) -> "PointerSet":
        dup = PointerSet(self.n_slots)
        dup._bits[:] = self._bits
        dup.popcount = self.popcount
        return dup

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, n_slots: int, blob: bytes) -> "PointerSet":
        ps = cls(n_slots)
        ps.load(blob)
        return ps

    def load(self, blob: bytes) -> None:
        """Deserialize a :meth:`to_bytes` payload (directory surface)."""
        if len(blob) != len(self._bits):
            raise ValueError(
                f"payload is {len(blob)} bytes, bitmap needs "
                f"{len(self._bits)}")
        self._bits[:] = blob
        self.popcount = int.from_bytes(self._bits, "little").bit_count()

    def estimate(self) -> int:
        """Member-count estimate (exact for the bitmap: the popcount)."""
        return self.popcount

    def truth_bytes(self) -> bytes:
        """The exact membership bitmap — for this backend, the payload."""
        return self.to_bytes()

    @property
    def sketch_params(self) -> tuple[int, int]:
        """``(bits, hashes)`` decode identity; exact sets have none."""
        return (0, 0)

    @property
    def size_bits(self) -> int:
        """S in the paper's sizing formulas: one bit per end-host."""
        return self.n_slots

    def __len__(self) -> int:
        return self.popcount

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PointerSet)
                and other.n_slots == self.n_slots
                and other._bits == self._bits)


@dataclass(frozen=True)
class PointerSnapshot:
    """An immutable view of one pointer set, as pulled by the analyzer.

    ``segment`` identifies the window: the set covers epochs
    ``[segment * epochs_covered, (segment+1) * epochs_covered)``.

    ``backend`` names the directory backend that produced ``bits``
    (``"exact"`` = the plain bitmap; anything else decodes through the
    :mod:`repro.directory` registry with the recorded ``bits_budget``/
    ``hashes`` geometry).  ``truth_bits`` is the measurement-only exact
    shadow bitmap a sketch carries so the analyzer can score false
    positives — it never feeds :meth:`slots` and contributes nothing to
    ``size_bits``.
    """

    level: int
    segment: int
    epochs_covered: int
    bits: bytes
    n_slots: int
    backend: str = "exact"
    bits_budget: int = 0
    hashes: int = 0
    sketch_bits: int = 0
    truth_bits: bytes = b""

    @property
    def epoch_lo(self) -> int:
        return self.segment * self.epochs_covered

    @property
    def epoch_hi(self) -> int:
        return (self.segment + 1) * self.epochs_covered - 1

    def slots(self) -> list[int]:
        """The recorded slot *superset* (exact for the bitmap backend)."""
        if self.backend == "exact":
            return list(PointerSet.from_bytes(self.n_slots,
                                              self.bits).iter_slots())
        # call-time import: core stays importable without the directory
        # registry (which itself imports this module for the bitmap)
        from ..directory import decode_directory_set

        ds = decode_directory_set(self.backend, self.n_slots, self.bits,
                                  bits=self.bits_budget, hashes=self.hashes)
        return list(ds.iter_slots())

    def true_slots(self) -> list[int]:
        """The exact slot set (shadow truth for sketches; measurement)."""
        if self.backend == "exact":
            return self.slots()
        return list(PointerSet.from_bytes(self.n_slots,
                                          self.truth_bits).iter_slots())

    @property
    def size_bits(self) -> int:
        """Modeled memory/transfer cost of this set (sketch-aware)."""
        return self.sketch_bits or self.n_slots


#: builds one empty directory set (PointerSet or a registered sketch)
SetFactory = Callable[[], Any]


class _LevelSlot:
    """One rotating pointer set with its current window tag."""

    __slots__ = ("pointer", "segment")

    def __init__(self, factory: SetFactory):
        self.pointer = factory()
        self.segment: Optional[int] = None  # None = never used


class HierarchicalPointerStore:
    """The k-level pointer hierarchy of one switch.

    Parameters
    ----------
    n_slots:
        Number of end-host slots (MPHF range).
    alpha:
        α — both the epoch duration in ms and the per-level fan-out
        (each level holds α sets), exactly as in the paper.
    k:
        Number of levels; k = 1 degenerates to a single pushed set.
    on_push:
        Callback invoked with a :class:`PointerSnapshot` whenever the
        top-level set completes its αᵏ ms window and is handed to the
        control plane (push model, §4.1.1).
    set_factory:
        Builds each of the hierarchy's directory sets.  Defaults to the
        exact bitmap; deployments pass a sketch factory from the
        :mod:`repro.directory` registry to trade memory for a
        false-positive rate (all sets share one geometry).
    """

    def __init__(self, n_slots: int, alpha: int, k: int, *,
                 on_push: Optional[Callable[[PointerSnapshot],
                                            None]] = None,
                 set_factory: Optional[SetFactory] = None):
        if alpha < 2:
            raise ValueError("alpha must be >= 2 (need a real hierarchy)")
        if k < 1:
            raise ValueError("need at least one level")
        self.n_slots = n_slots
        self.alpha = alpha
        self.k = k
        self.on_push = on_push
        factory: SetFactory = (
            (lambda: PointerSet(n_slots))
            if set_factory is None else set_factory)
        self.set_factory = factory
        # levels[h-1] for h in 1..k-1 holds alpha slots; top is separate.
        self._levels: list[list[_LevelSlot]] = [
            [_LevelSlot(factory) for _ in range(alpha)]
            for _ in range(k - 1)]
        self._top = _LevelSlot(factory)
        sample = self._top.pointer
        if sample.n_slots != n_slots:
            raise ValueError(
                f"set_factory builds {sample.n_slots}-slot sets, "
                f"store needs {n_slots}")
        #: registry name of the directory backend every set uses
        self.backend: str = sample.backend_name
        #: modeled bits per set (sketch-aware; S for the exact bitmap)
        self.set_size_bits: int = sample.size_bits
        # per-level epoch divisors, precomputed: the update path runs
        # per forwarded packet and must not exponentiate (§4.1.2's
        # "one operation per packet" spirit)
        self._divisors = [alpha ** h for h in range(k)]
        self.updates = 0
        self.pushes = 0

    # -- geometry ------------------------------------------------------------

    def epochs_covered(self, level: int) -> int:
        """Epochs per set at ``level`` (1-based): αˡᵉᵛᵉˡ⁻¹; top: αᵏ⁻¹."""
        if not 1 <= level <= self.k:
            raise ValueError(f"level {level} outside [1, {self.k}]")
        return self.alpha ** (level - 1)

    def window_ms(self, level: int, alpha_ms: Optional[float] = None) -> float:
        """Wall-clock coverage of one set at ``level`` (αˡᵉᵛᵉˡ ms)."""
        a_ms = self.alpha if alpha_ms is None else alpha_ms
        return a_ms * self.epochs_covered(level)

    def _segment_of(self, level: int, epoch: int) -> int:
        return epoch // self._divisors[level - 1]

    # -- dataplane update ----------------------------------------------------

    def update(self, epoch: int, slot: int) -> None:
        """Record "forwarded a packet to slot in epoch" across all levels.

        This is the per-packet path: one slot index (computed once by the
        caller via the MPHF) is set in one set per level, rotating any
        set whose window has moved on.
        """
        self.updates += 1
        alpha = self.alpha
        divisors = self._divisors
        for level_idx, level_slots in enumerate(self._levels):
            seg = epoch // divisors[level_idx]
            ls = level_slots[seg % alpha]
            if ls.segment != seg:
                ls.pointer.clear()
                ls.segment = seg
            ls.pointer.set_slot(slot)
        seg = epoch // divisors[self.k - 1]
        if self._top.segment != seg:
            if self._top.segment is not None:
                self._push_top()
            self._top.pointer.clear()
            self._top.segment = seg
        self._top.pointer.set_slot(slot)

    def _push_top(self) -> None:
        self.pushes += 1
        if self.on_push is not None and self._top.segment is not None:
            self.on_push(self._snapshot_of(self.k, self._top))

    def flush_top(self) -> None:
        """Force-push the current top-level set (e.g. at shutdown)."""
        if self._top.segment is not None:
            self._push_top()

    # -- analyzer pull model -----------------------------------------------

    def _slots_at(self, level: int) -> list[_LevelSlot]:
        return ([self._top] if level == self.k
                else self._levels[level - 1])

    def _snapshot_of(self, level: int, ls: _LevelSlot) -> PointerSnapshot:
        assert ls.segment is not None
        p = ls.pointer
        backend = p.backend_name
        return PointerSnapshot(level=level, segment=ls.segment,
                               epochs_covered=self.epochs_covered(level),
                               bits=p.to_bytes(),
                               n_slots=self.n_slots,
                               backend=backend,
                               bits_budget=p.sketch_params[0],
                               hashes=p.sketch_params[1],
                               sketch_bits=p.size_bits,
                               truth_bits=(b"" if backend == "exact"
                                           else p.truth_bytes()))

    def snapshot(self, level: int, epoch: int) -> Optional[PointerSnapshot]:
        """The live set covering ``epoch`` at ``level``, if still held.

        Returns ``None`` when the window was never populated or has been
        recycled — both mean "no packets recorded", never wrong data
        (lazy rotation keeps tags honest).
        """
        seg = self._segment_of(level, epoch)
        for ls in self._slots_at(level):
            if ls.segment == seg:
                return self._snapshot_of(level, ls)
        return None

    def epoch_status(self, level: int, epoch: int) -> str:
        """How ``level`` can answer for ``epoch``.

        * ``"live"`` — the covering set still holds that window's bits.
        * ``"empty"`` — the window was never written (its set slot was
          never advanced that far), so "no hosts" is the *correct*
          answer, not data loss.  Negative epochs are empty by
          definition.
        * ``"recycled"`` — the set has been reused by a newer window;
          the data existed and is gone at this level (escalate).
        """
        if epoch < 0:
            return "empty"
        seg = self._segment_of(level, epoch)
        slots = self._slots_at(level)
        ls = (self._top if level == self.k
              else slots[seg % self.alpha])
        if ls.segment == seg:
            return "live"
        if ls.segment is None or ls.segment < seg:
            return "empty"
        return "recycled"

    def snapshots_covering(self, level: int, epoch_lo: int,
                           epoch_hi: int) -> list[PointerSnapshot]:
        """All live sets at ``level`` intersecting ``[epoch_lo, epoch_hi]``."""
        if epoch_lo > epoch_hi:
            raise ValueError("empty epoch range")
        span = self.epochs_covered(level)
        seg_lo, seg_hi = epoch_lo // span, epoch_hi // span
        out = []
        for ls in self._slots_at(level):
            if ls.segment is not None and seg_lo <= ls.segment <= seg_hi:
                out.append(self._snapshot_of(level, ls))
        return sorted(out, key=lambda s: s.segment)

    def slots_for_epochs(self, epoch_lo: int, epoch_hi: int,
                         level: int = 1) -> set[int]:
        """Union of set bits over live sets covering the epoch range."""
        slots: set[int] = set()
        for snap in self.snapshots_covering(level, epoch_lo, epoch_hi):
            slots.update(snap.slots())
        return slots

    # -- accounting (Fig 10a) -----------------------------------------------

    @property
    def total_pointer_sets(self) -> int:
        return self.alpha * (self.k - 1) + 1

    @property
    def memory_bits(self) -> int:
        """α·(k−1)·B + B, B = bits per set — the paper's switch-memory
        formula (B = S for the exact bitmap; a sketch's bit budget
        otherwise, which is what the ``directory-bits`` sweep charts)."""
        return self.total_pointer_sets * self.set_size_bits
