"""Synthetic datacenter workload generation.

The paper's micro-benchmarks use hand-placed flows; the sweep subsystem
additionally needs fabric-scale background *populations* — hundreds to
thousands of concurrent flows per grid point — with the usual
datacenter statistics:

* **heavy-tailed flow sizes** — most flows are mice, most bytes belong
  to elephants (bounded Pareto, as in the Benson/Roy traffic studies
  the paper cites for packet sizes);
* **Poisson flow arrivals** with a configurable rate, *or* a
  fixed-size population (``n_flows``) spread over a start window —
  the mode the ``flows=`` sweep axis drives;
* **uniform or zipf-skewed endpoint selection** over the host set.

Everything is seeded and deterministic.  Generation is split into two
layers so large populations stay cheap:

* :class:`FlowPlanner` produces the flow *plan* (who talks to whom,
  how much, starting when) with **no simulator objects at all**.  It
  has two code paths — :meth:`FlowPlanner.plan` draws endpoint indices
  in 4096-wide C-level ``random.choices`` batches (sizes are one cheap
  ``random()`` call per flow on both paths),
  :meth:`FlowPlanner.plan_naive` draws everything per flow — that
  produce **identical plans for equal seeds** because every attribute
  consumes its own derived RNG stream.  A property test holds the two
  paths equal.
* :class:`BackgroundTraffic` materializes a plan with one heap-driven
  emitter for the *whole* population (flow state lives in parallel
  lists), instead of one :class:`~repro.simnet.traffic.UdpCbrSource`
  object + callback chain per flow — the per-flow Python overhead that
  used to dominate at thousands of flows.

``docs/WORKLOADS.md`` documents the model and how the sweep ``flows=``
axis maps onto it.
"""

from __future__ import annotations

import heapq
import math
import random
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

from .packet import (DEFAULT_MTU, HEADER_BYTES, PRIO_LOW, PROTO_UDP, FlowKey,
                     Packet)
from .topology import Network
from .traffic import UdpCbrSource, UdpSink

#: Endpoint-mix families (`WorkloadSpec.mix`).
MIX_UNIFORM = "uniform"
MIX_ZIPF = "zipf"
MIXES = (MIX_UNIFORM, MIX_ZIPF)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload.

    Two arrival modes:

    * ``n_flows=None`` (default) — Poisson arrivals at
      ``arrival_rate_per_s`` for ``duration_s`` seconds;
    * ``n_flows=N`` — exactly ``N`` flows, their start times uniform
      over ``[t0, t0 + spread_s]`` (``spread_s=0`` starts them all at
      once).  This is the mode the sweep ``flows=`` axis uses.

    ``mix`` selects the endpoint distribution: ``uniform`` over the
    sender/receiver lists, or ``zipf`` with exponent ``zipf_s`` (rank =
    position in the list, so earlier hosts are hotter).
    """

    arrival_rate_per_s: float = 2000.0
    n_flows: Optional[int] = None
    spread_s: float = 0.0
    mix: str = MIX_UNIFORM
    zipf_s: float = 1.1
    mean_flow_bytes: int = 100_000
    pareto_shape: float = 1.2          # <2: heavy tail
    min_flow_bytes: int = 1_500
    max_flow_bytes: int = 10_000_000
    flow_rate_bps: float = 1e9
    packet_size: int = DEFAULT_MTU
    duration_s: float = 0.1
    priority: int = PRIO_LOW
    seed: int = 42

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.n_flows is not None and self.n_flows < 0:
            raise ValueError("n_flows must be >= 0")
        if self.spread_s < 0:
            raise ValueError("spread_s must be >= 0")
        if self.mix not in MIXES:
            raise ValueError(
                f"mix must be one of {MIXES}, got {self.mix!r}")
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto shape must exceed 1 (finite mean)")
        if not 0 < self.min_flow_bytes <= self.max_flow_bytes:
            raise ValueError("invalid flow size bounds")
        if self.flow_rate_bps <= 0:
            raise ValueError("flow rate must be positive")
        if self.packet_size < 64:
            raise ValueError("packet size must be >= 64 bytes")


@dataclass(frozen=True)
class PlannedFlow:
    """One flow of a planned population (no simulator objects)."""

    flow: FlowKey
    size_bytes: int
    start: float


@dataclass
class GeneratedFlow:
    """One flow the generator materialized onto the simulator."""

    flow: FlowKey
    size_bytes: int
    start: float
    source: Optional[UdpCbrSource] = None


def _stream(seed: int, label: str) -> random.Random:
    """A derived RNG stream, stable per (seed, attribute label).

    Giving every flow attribute its own stream is what lets the
    batched and naive planners draw in different *orders* (all sources
    at once vs one flow at a time) yet produce identical plans.
    """
    return random.Random(zlib.crc32(f"{seed}/{label}".encode("ascii")))


class FlowPlanner:
    """Plans a :class:`WorkloadSpec` population over endpoint lists.

    Pure planning: the output is a list of :class:`PlannedFlow` — no
    sinks, sources, or simulator state.  ``plan()`` (batched) and
    ``plan_naive()`` (per-flow reference) are interchangeable; the
    batched path exists because one ``random.choices(k=4096)`` call
    runs the draw loop in C while the naive path pays Python call
    overhead per flow.
    """

    #: endpoint/size draws per batch in :meth:`plan`
    BATCH = 4096

    def __init__(self, spec: WorkloadSpec, senders: list[str],
                 receivers: list[str], *, base_port: int = 40_000):
        if not senders or not receivers:
            raise ValueError("need at least one sender and receiver")
        if len(receivers) == 1 and senders == receivers:
            raise ValueError("sole sender and receiver coincide: "
                             "every pair would be a self-flow")
        self.spec = spec
        self.senders = list(senders)
        self.receivers = list(receivers)
        self.base_port = base_port
        self._src_cum = self._cum_weights(len(self.senders))
        self._dst_cum = self._cum_weights(len(self.receivers))
        self._src_idx = range(len(self.senders))
        self._dst_idx = range(len(self.receivers))

    # -- distributions --------------------------------------------------------

    def _cum_weights(self, n: int) -> Optional[list[float]]:
        """Cumulative zipf weights by list rank (None for uniform)."""
        if self.spec.mix == MIX_UNIFORM:
            return None
        total, cum = 0.0, []
        for rank in range(1, n + 1):
            total += rank ** -self.spec.zipf_s
            cum.append(total)
        return cum

    def _size_of(self, u: float) -> int:
        """Bounded-Pareto flow size from one uniform draw."""
        spec = self.spec
        shape = spec.pareto_shape
        # scale so that the unbounded Pareto mean matches mean_flow_bytes
        scale = spec.mean_flow_bytes * (shape - 1) / shape
        scale = max(scale, spec.min_flow_bytes)
        size = scale / ((1.0 - u) ** (1 / shape))
        return int(min(max(size, spec.min_flow_bytes),
                       spec.max_flow_bytes))

    def _starts(self, t0: float) -> list[float]:
        """Flow start times (the ``arrival`` stream).

        Identical in both planner paths: this loop is O(n) trivial
        float work either way.
        """
        spec = self.spec
        rng = _stream(spec.seed, "arrival")
        if spec.n_flows is not None:
            if spec.spread_s == 0:
                return [t0] * spec.n_flows
            return [t0 + rng.random() * spec.spread_s
                    for _ in range(spec.n_flows)]
        starts = []
        t = t0
        end = t0 + spec.duration_s
        while True:
            t += rng.expovariate(spec.arrival_rate_per_s)
            if t >= end:
                break
            starts.append(t)
        return starts

    def _make_flow(self, i: int, s_i: int, d_i: int, size: int,
                   start: float) -> PlannedFlow:
        """Assemble flow ``i`` — shared by both planner paths."""
        src = self.senders[s_i]
        dst = self.receivers[d_i]
        if src == dst:
            # deterministic self-pair fix-up: step to the next receiver
            # (no extra RNG draw, so batched and naive consumption stay
            # identical)
            for off in range(1, len(self.receivers) + 1):
                cand = (d_i + off) % len(self.receivers)
                if self.receivers[cand] != src:
                    d_i, dst = cand, self.receivers[cand]
                    break
            else:
                raise ValueError(
                    f"no receiver other than {src!r} available")
        port = self.base_port + i
        return PlannedFlow(
            flow=FlowKey(src, dst, port, port, PROTO_UDP),
            size_bytes=size, start=start)

    # -- the two planner paths -------------------------------------------------

    def plan(self, t0: float = 0.0) -> list[PlannedFlow]:
        """Batched planning: endpoint draws in ``BATCH``-sized C-level
        ``choices`` calls (size draws are a single cheap ``random()``
        per flow either way).  Output is identical to
        :meth:`plan_naive`."""
        starts = self._starts(t0)
        n = len(starts)
        rng_src = _stream(self.spec.seed, "src")
        rng_dst = _stream(self.spec.seed, "dst")
        rng_size = _stream(self.spec.seed, "size")
        flows: list[PlannedFlow] = []
        pos = 0
        while pos < n:
            k = min(self.BATCH, n - pos)
            src_is = rng_src.choices(self._src_idx,
                                     cum_weights=self._src_cum, k=k)
            dst_is = rng_dst.choices(self._dst_idx,
                                     cum_weights=self._dst_cum, k=k)
            sizes = [self._size_of(rng_size.random()) for _ in range(k)]
            for j in range(k):
                i = pos + j
                flows.append(self._make_flow(i, src_is[j], dst_is[j],
                                             sizes[j], starts[i]))
            pos += k
        return flows

    def plan_naive(self, t0: float = 0.0) -> list[PlannedFlow]:
        """Per-flow reference path (one draw call per attribute per
        flow) — the oracle the batched path is property-tested
        against."""
        starts = self._starts(t0)
        rng_src = _stream(self.spec.seed, "src")
        rng_dst = _stream(self.spec.seed, "dst")
        rng_size = _stream(self.spec.seed, "size")
        flows = []
        for i, start in enumerate(starts):
            s_i = rng_src.choices(self._src_idx,
                                  cum_weights=self._src_cum, k=1)[0]
            d_i = rng_dst.choices(self._dst_idx,
                                  cum_weights=self._dst_cum, k=1)[0]
            size = self._size_of(rng_size.random())
            flows.append(self._make_flow(i, s_i, d_i, size, start))
        return flows


class BackgroundTraffic:
    """One emitter driving a whole planned population.

    Flow state (remaining packets, per-flow packet size and spacing)
    lives in parallel lists; a single min-heap of ``(next_emit, flow)``
    entries drives one simulator callback for the entire population.
    Compared to one :class:`UdpCbrSource` per flow this removes the
    per-flow object, closure, and scheduler-entry overhead — the
    difference between hundreds and thousands of concurrent flows
    being tractable.

    Sinks are bound once per ``(dst, port)``; deliveries are counted
    on ``self.delivered``.
    """

    def __init__(self, network: Network, plans: list[PlannedFlow],
                 spec: WorkloadSpec):
        self.network = network
        self.sim = network.sim
        self.spec = spec
        self.plans = plans
        self.packets_sent = 0
        self.bytes_sent = 0
        self.delivered = 0
        self._stopped = False
        self._psize: list[int] = []
        self._remaining: list[int] = []
        self._interval: list[float] = []
        self._heap: list[tuple[float, int]] = []
        bound: set[tuple[str, int]] = set()
        now = self.sim.now
        for i, p in enumerate(plans):
            psize = min(spec.packet_size, max(64, p.size_bytes))
            self._psize.append(psize)
            self._remaining.append(max(1, -(-p.size_bytes // psize)))
            self._interval.append(psize * 8 / spec.flow_rate_bps)
            key = (p.flow.dst, p.flow.dport)
            if key not in bound:
                network.hosts[p.flow.dst].bind(PROTO_UDP, p.flow.dport,
                                               self._on_delivery)
                bound.add(key)
            self._heap.append((max(p.start, now), i))
        heapq.heapify(self._heap)
        if self._heap:
            self.sim.call_at(self._heap[0][0], self._pump)

    def _on_delivery(self, _pkt: Packet, _now: float) -> None:
        self.delivered += 1

    def _pump(self, _arg: object = None) -> None:
        """Emit every due packet, then sleep until the next one."""
        if self._stopped:
            return
        heap = self._heap
        now = self.sim.now
        hosts = self.network.hosts
        plans = self.plans
        psizes = self._psize
        remaining = self._remaining
        intervals = self._interval
        priority = self.spec.priority
        pop = heapq.heappop
        push = heapq.heappush
        sent = 0
        nbytes = 0
        cutoff = now + 1e-12
        while heap and heap[0][0] <= cutoff:
            t, i = pop(heap)
            key = plans[i].flow
            psize = psizes[i]
            # direct construction with the planned FlowKey — make_udp
            # minus the per-packet 5-tuple rebuild
            pkt = Packet(flow=key, size=psize, priority=priority,
                         payload_bytes=psize - HEADER_BYTES
                         if psize > HEADER_BYTES else 0)
            hosts[key.src].send(pkt)
            sent += 1
            nbytes += psize
            remaining[i] -= 1
            if remaining[i] > 0:
                push(heap, (t + intervals[i], i))
        self.packets_sent += sent
        self.bytes_sent += nbytes
        if heap:
            self.sim.call_at(heap[0][0], self._pump)

    def stop(self) -> None:
        """Cancel all pending emissions."""
        self._stopped = True
        self._heap.clear()

    @property
    def n_flows(self) -> int:
        return len(self.plans)


class WorkloadGenerator:
    """Schedules a :class:`WorkloadSpec` onto a network's hosts.

    Flows are UDP at a fixed rate with size-derived duration — enough
    to exercise pointers, records, and queries without TCP dynamics
    (use the scenario builders when congestion control matters).

    Two materialization paths:

    * :meth:`schedule` — one :class:`UdpCbrSource`/:class:`UdpSink`
      pair per flow (the historical path, fine for dozens of flows);
    * :meth:`launch` — the batched plan driven by one
      :class:`BackgroundTraffic` emitter (the path sweeps use for
      thousands of flows).

    Both draw from the same :class:`FlowPlanner`, so for equal specs
    they carry the same flow population.
    """

    def __init__(self, network: Network, spec: WorkloadSpec, *,
                 senders: Optional[list[str]] = None,
                 receivers: Optional[list[str]] = None,
                 base_port: int = 40_000):
        self.network = network
        self.spec = spec
        hosts = network.host_names
        self.planner = FlowPlanner(
            spec,
            senders if senders is not None else hosts,
            receivers if receivers is not None else hosts,
            base_port=base_port)
        self.flows: list[GeneratedFlow] = []
        self.traffic: Optional[BackgroundTraffic] = None
        self._sinks: set[tuple[str, int]] = set()

    # -- planning -------------------------------------------------------------

    def plan(self, *, batched: bool = True) -> list[PlannedFlow]:
        """The flow plan for this generator (no simulator objects)."""
        t0 = self.network.sim.now
        return (self.planner.plan(t0) if batched
                else self.planner.plan_naive(t0))

    # -- materialization ------------------------------------------------------

    def schedule(self) -> list[GeneratedFlow]:
        """Materialize the plan one UdpCbrSource per flow (naive path)."""
        spec = self.spec
        for p in self.plan(batched=False):
            self._ensure_sink(p.flow.dst, p.flow.dport)
            duration = max(p.size_bytes * 8 / spec.flow_rate_bps, 1e-6)
            source = UdpCbrSource(
                self.network.sim, self.network.hosts[p.flow.src],
                p.flow.dst, sport=p.flow.sport, dport=p.flow.dport,
                rate_bps=spec.flow_rate_bps,
                packet_size=min(spec.packet_size, max(64, p.size_bytes)),
                priority=spec.priority, start=p.start, duration=duration)
            self.flows.append(GeneratedFlow(flow=p.flow,
                                            size_bytes=p.size_bytes,
                                            start=p.start, source=source))
        return self.flows

    def launch(self) -> BackgroundTraffic:
        """Materialize the plan through one batched emitter."""
        plans = self.plan(batched=True)
        self.traffic = BackgroundTraffic(self.network, plans, self.spec)
        self.flows = [GeneratedFlow(flow=p.flow, size_bytes=p.size_bytes,
                                    start=p.start) for p in plans]
        return self.traffic

    def _ensure_sink(self, host_name: str, port: int) -> None:
        key = (host_name, port)
        if key not in self._sinks:
            UdpSink(self.network.hosts[host_name], port)
            self._sinks.add(key)

    # -- post-run statistics ---------------------------------------------------

    def size_percentiles(
        self, ps: Sequence[int] = (50, 90, 99)
    ) -> dict[int, int]:
        sizes = sorted(f.size_bytes for f in self.flows)
        if not sizes:
            return {p: 0 for p in ps}
        out = {}
        for p in ps:
            rank = max(1, math.ceil(p / 100 * len(sizes)))
            out[p] = sizes[rank - 1]
        return out

    def elephant_byte_share(self, threshold: int = 1_000_000) -> float:
        """Fraction of bytes in flows >= threshold (tail check)."""
        total = sum(f.size_bytes for f in self.flows)
        if total == 0:
            return 0.0
        big = sum(f.size_bytes for f in self.flows
                  if f.size_bytes >= threshold)
        return big / total
