"""Agent-crash fault: kill (and optionally restart) telemetry state.

Two blast radii, selected by ``shard``:

* ``shard < 0`` (default): the whole host agent dies — sniffing stops,
  the in-memory record table and any batched-ingest buffer are lost.
  ``stop`` restarts the agent with an empty table (the real daemon's
  supervisor restart); telemetry from before the crash is gone, which
  is exactly the evidence loss a mid-diagnosis crash inflicts.
* ``shard >= 0``: one shard of a
  :class:`~repro.hostd.sharded.ShardedRecordStore` loses its records
  (a backing-store partition failure); the agent keeps sniffing and
  repopulates the shard from post-crash traffic.
"""

from __future__ import annotations

from typing import Any

from .base import Fault, FaultContext, FaultError, FaultParam, FaultSpec, register_fault


@register_fault
class AgentCrashFault(Fault):
    """Crash a host agent (or one record-store shard) mid-run."""

    spec = FaultSpec(
        name="agent-crash",
        summary="kill a host agent (or one record-store shard) mid-run; "
        "stop= restarts it with an empty table",
        degrades="host evidence: every record the host held vanishes; "
        "diagnoses that needed its telemetry lose their witness",
        diagnosed_by="(none — a stressor; the analyzer sees a host with "
        "no matching records)",
        params={
            "host": FaultParam("", "the host whose agent crashes"),
            "shard": FaultParam(-1, "record-store shard to lose (-1 = whole agent)"),
        },
    )

    def __init__(self, **params: Any):
        super().__init__(**params)
        self.records_lost = 0

    def _agent(self, ctx: FaultContext) -> Any:
        deploy = ctx.require_deployment(self)
        name = self.p["host"]
        try:
            return deploy.host_agents[name]
        except KeyError:
            raise FaultError(
                f"agent-crash: unknown host {name!r}; known: "
                f"{', '.join(sorted(deploy.host_agents))}"
            ) from None

    def schedule(self, ctx: FaultContext) -> None:
        agent = self._agent(ctx)
        shard = self.p["shard"]
        if shard >= 0 and not hasattr(agent.store, "drop_shard"):
            raise FaultError(
                f"agent-crash: host {self.p['host']!r} has a flat record "
                f"store; shard crashes need record_shards > 1"
            )
        super().schedule(ctx)

    def inject(self, ctx: FaultContext) -> None:
        agent = self._agent(ctx)
        shard = self.p["shard"]
        if shard >= 0:
            self.records_lost = agent.store.drop_shard(shard)
        else:
            self.records_lost = agent.crash()

    def heal(self, ctx: FaultContext) -> None:
        if self.p["shard"] < 0:
            self._agent(ctx).restart()
