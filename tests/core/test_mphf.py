"""Unit tests for the minimal perfect hash function."""

import pytest

from repro.core.mphf import (HostDirectory, MinimalPerfectHash,
                             MphfBuildError)


def hosts(n, prefix="h"):
    return [f"{prefix}{i}" for i in range(n)]


class TestConstruction:
    @pytest.mark.parametrize("n", [1, 2, 7, 100, 1000])
    def test_minimal_and_perfect(self, n):
        keys = hosts(n)
        mphf = MinimalPerfectHash.build(keys)
        slots = [mphf.lookup(k) for k in keys]
        assert sorted(slots) == list(range(n))  # bijection onto [0, n)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(MphfBuildError):
            MinimalPerfectHash.build(["a", "b", "a"])

    def test_empty_rejected(self):
        with pytest.raises(MphfBuildError):
            MinimalPerfectHash.build([])

    def test_ip_like_keys(self):
        keys = [f"10.{i // 256}.{i % 256}.1" for i in range(500)]
        mphf = MinimalPerfectHash.build(keys)
        assert sorted(mphf.lookup(k) for k in keys) == list(range(500))

    def test_bytes_and_str_keys_equivalent(self):
        mphf = MinimalPerfectHash.build(["alpha", "beta"])
        assert mphf.lookup("alpha") == mphf.lookup(b"alpha")

    def test_deterministic_across_builds(self):
        keys = hosts(200)
        a = MinimalPerfectHash.build(keys)
        b = MinimalPerfectHash.build(keys)
        assert all(a.lookup(k) == b.lookup(k) for k in keys)

    def test_bucket_load_variations(self):
        keys = hosts(300)
        for load in (2.0, 4.0, 6.0):
            mphf = MinimalPerfectHash.build(keys, bucket_load=load)
            assert sorted(mphf.lookup(k) for k in keys) == list(range(300))


class TestSizeAccounting:
    def test_bits_per_key_small(self):
        """The paper quotes ~2.1 bits/key for FCH; hash-displace lands in
        the same ballpark — assert we stay within a small constant."""
        mphf = MinimalPerfectHash.build(hosts(5000))
        assert mphf.bits_per_key() < 8.0

    def test_size_scales_with_n(self):
        small = MinimalPerfectHash.build(hosts(100)).size_bits()
        large = MinimalPerfectHash.build(hosts(2000)).size_bits()
        assert large > small

    def test_fingerprints_excluded_by_default(self):
        mphf = MinimalPerfectHash.build(hosts(100))
        assert (mphf.size_bits(include_fingerprints=True)
                >= mphf.size_bits() + 16 * 100)


class TestMembership:
    def test_contains_members(self):
        keys = hosts(300)
        mphf = MinimalPerfectHash.build(keys)
        assert all(mphf.contains(k) for k in keys)

    def test_contains_rejects_most_foreign_keys(self):
        mphf = MinimalPerfectHash.build(hosts(300))
        foreign = [f"x{i}" for i in range(300)]
        false_positives = sum(mphf.contains(k) for k in foreign)
        # 16-bit fingerprints: expected FP rate ~2^-16
        assert false_positives <= 2


class TestSerialization:
    def test_roundtrip_preserves_lookups(self):
        keys = hosts(400)
        mphf = MinimalPerfectHash.build(keys)
        clone = MinimalPerfectHash.deserialize(mphf.serialize())
        assert all(clone.lookup(k) == mphf.lookup(k) for k in keys)
        assert all(clone.contains(k) for k in keys)

    def test_serialized_size_reasonable(self):
        mphf = MinimalPerfectHash.build(hosts(1000))
        blob = mphf.serialize()
        # fingerprints (2 B/key) dominate; well under 10 B/key total
        assert len(blob) < 10_000


class TestHostDirectory:
    def test_roundtrip_host_slot_host(self):
        names = hosts(64)
        directory = HostDirectory(names)
        for name in names:
            assert directory.host_of(directory.slot_of(name)) == name

    def test_hosts_of_sorted(self):
        names = hosts(10)
        directory = HostDirectory(names)
        slots = [directory.slot_of(h) for h in ("h3", "h1", "h7")]
        assert directory.hosts_of(slots) == ["h1", "h3", "h7"]

    def test_n_matches(self):
        assert HostDirectory(hosts(17)).n == 17

    def test_hosts_property_copies(self):
        directory = HostDirectory(hosts(5))
        listing = directory.hosts
        listing.append("intruder")
        assert len(directory.hosts) == 5
