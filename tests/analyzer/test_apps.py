"""Unit tests for the four §5 debugging applications.

These run against small live scenarios (the integration suite covers the
paper's full workloads; here the focus is verdict logic and breakdown
accounting).
"""

import pytest

from repro.analyzer.apps import (diagnose_cascade, diagnose_contention,
                                 diagnose_load_imbalance,
                                 diagnose_red_lights)
from repro.core.epoch import EpochRange
from repro.scenarios import (run_contention_scenario,
                             run_load_imbalance_scenario,
                             run_red_lights_scenario,
                             run_cascades_scenario)


@pytest.fixture(scope="module")
def contention_priority():
    return run_contention_scenario(4, discipline="priority")


@pytest.fixture(scope="module")
def contention_fifo():
    return run_contention_scenario(4, discipline="fifo")


class TestDiagnoseContention:
    def test_classifies_priority_contention(self, contention_priority):
        res = contention_priority
        assert res.alerts, "trigger must have fired"
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        assert verdict.problem == "priority-contention"

    def test_culprits_are_the_burst_flows(self, contention_priority):
        res = contention_priority
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        culprit_srcs = {c.flow.src for c in verdict.culprits}
        expected = {f"h1_{j}" for j in range(1, 5)}
        assert expected <= culprit_srcs

    def test_culprit_metadata(self, contention_priority):
        res = contention_priority
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        udp_culprits = [c for c in verdict.culprits
                        if c.flow.is_udp]
        assert udp_culprits
        for c in udp_culprits:
            assert c.priority > 0          # high-priority UDP
            assert c.bytes > 0
            assert c.shared_epochs is not None

    def test_breakdown_has_fig7_phases(self, contention_priority):
        res = contention_priority
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        parts = verdict.breakdown.parts
        for phase in ("problem_detection", "alert_to_analyzer",
                      "pointer_retrieval", "diagnosis"):
            assert phase in parts, phase
        # §5: whole loop well under 100 ms
        assert verdict.total_time_s < 0.100

    def test_classifies_microburst_without_priorities(self,
                                                      contention_fifo):
        res = contention_fifo
        assert res.alerts
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        assert verdict.problem == "microburst-contention"

    def test_hosts_consulted_excludes_victim_destination(
            self, contention_priority):
        res = contention_priority
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        assert res.victim.dst not in verdict.hosts_consulted


class TestDiagnoseRedLights:
    @pytest.fixture(scope="class")
    def result(self):
        return run_red_lights_scenario()

    def test_finds_culprits_at_both_switches(self, result):
        assert result.alerts
        verdict = diagnose_red_lights(result.deployment.analyzer,
                                      result.alerts[0])
        by_switch = {}
        for c in verdict.culprits:
            by_switch.setdefault(c.switch, set()).add(c.flow.src)
        assert "B" in by_switch.get("S1", set())
        assert "C" in by_switch.get("S2", set())

    def test_culprits_share_epochs_with_victim(self, result):
        verdict = diagnose_red_lights(result.deployment.analyzer,
                                      result.alerts[0])
        assert all(c.shared_epochs is not None for c in verdict.culprits)

    def test_throughput_drops_at_each_switch(self, result):
        """The Fig 3 signal itself: dips at S1 and (deeper) at S2."""
        b1_lo, b1_len = result.burst1
        b2_lo, b2_len = result.burst2
        s1_min = min(g for t, g in result.tput_at_s1.series()
                     if b1_lo <= t <= b1_lo + 2 * b1_len)
        s2_min = min(g for t, g in result.tput_at_s2.series()
                     if b1_lo <= t <= b2_lo + 2 * b2_len)
        assert s1_min < 0.6   # degraded at S1
        assert s2_min <= s1_min  # cumulative at S2


class TestDiagnoseCascade:
    @pytest.fixture(scope="class")
    def cascaded(self):
        return run_cascades_scenario(cascaded=True)

    def test_full_chain_recovered(self, cascaded):
        assert cascaded.alerts
        verdict = diagnose_cascade(cascaded.deployment.analyzer,
                                   cascaded.alerts[0])
        assert verdict.cascade_chain == [cascaded.flow_ce,
                                         cascaded.flow_af,
                                         cascaded.flow_bd]

    def test_chain_priorities_ascend(self, cascaded):
        verdict = diagnose_cascade(cascaded.deployment.analyzer,
                                   cascaded.alerts[0])
        prios = [c.priority for c in verdict.culprits]
        assert prios == sorted(prios)

    def test_no_cascade_baseline_finishes_earlier(self):
        base = run_cascades_scenario(cascaded=False)
        casc = run_cascades_scenario(cascaded=True)
        assert base.ce_completed_at is not None
        assert casc.ce_completed_at is not None
        assert casc.ce_completed_at > base.ce_completed_at + 0.004

    def test_depth_limit_respected(self, cascaded):
        verdict = diagnose_cascade(cascaded.deployment.analyzer,
                                   cascaded.alerts[0], max_depth=1)
        assert len(verdict.cascade_chain) <= 2


class TestDiagnoseLoadImbalance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_load_imbalance_scenario(8)

    def test_detects_clean_separation(self, result):
        verdict = diagnose_load_imbalance(
            result.deployment.analyzer, result.suspect_switch,
            epochs=EpochRange(0, result.last_epoch))
        assert verdict.imbalanced
        assert result.small_egress in verdict.distribution
        assert result.large_egress in verdict.distribution

    def test_distribution_split_matches_threshold(self, result):
        verdict = diagnose_load_imbalance(
            result.deployment.analyzer, result.suspect_switch,
            epochs=EpochRange(0, result.last_epoch))
        assert all(s < 1_000_000
                   for s in verdict.distribution[result.small_egress])
        assert all(s >= 900_000
                   for s in verdict.distribution[result.large_egress])

    def test_consults_only_receivers(self, result):
        verdict = diagnose_load_imbalance(
            result.deployment.analyzer, result.suspect_switch,
            epochs=EpochRange(0, result.last_epoch))
        assert all(h.startswith("rx") for h in verdict.hosts_consulted)
        assert len(verdict.hosts_consulted) == 8

    def test_healthy_ecmp_not_flagged(self):
        res = run_load_imbalance_scenario(8)
        # remove the malfunction and replay fresh traffic: new scenario
        # without override
        net = res.network
        net.switches["S1"].forwarding_override = None
        from repro.simnet.traffic import UdpCbrSource
        for i in range(8):
            UdpCbrSource(net.sim, net.hosts[f"tx{i}"], f"rx{i}",
                         sport=7001, dport=7000, rate_bps=2e9,
                         start=net.sim.now + 0.001, duration=0.004)
        net.run(until=net.sim.now + 0.010)
        last = res.deployment.datapaths["S1"].clock.epoch_of(net.sim.now)
        verdict = diagnose_load_imbalance(
            res.deployment.analyzer, "S1", epochs=EpochRange(0, last))
        # ECMP mixes sizes across both spines: no clean separation
        assert not verdict.imbalanced
