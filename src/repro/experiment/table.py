"""Run-table expansion and collision-free ``(point, rep)`` seeds.

The run table is the cartesian product of the experiment's axes ×
``reps`` repetitions.  Every cell gets its own seed, derived by CRC32
from the *canonical form* of the cell — base seed, the axis values
sorted by axis name, and the repetition index:

    crc32(b"<base>|<salt>|alpha_ms=10,skew_ms=2.0|rep=3")

Two properties matter and are both property-tested:

* **Stable under axis reordering.**  The key sorts axes by name, so
  ``axes={"skew_ms": ..., "victims": ...}`` and the reverse declaration
  produce the same ``(params, rep) → seed`` mapping — a reordered spec
  cannot silently re-seed a committed study.
* **Pairwise distinct across the whole table.**  CRC32 of distinct
  keys can in principle collide; :func:`derive_seeds` detects any
  collision inside one table and bumps a deterministic salt until the
  table is collision-free, so no repetition ever silently reuses
  another cell's randomness.  The salt depends only on the *set* of
  cells, never on enumeration order.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

from ..sweep import expand_grid
from .registry import ExperimentError

#: Safety bound on the collision salt search (the probability of even
#: one bump is ~n²/2³² for an n-run table; reaching this means the
#: table itself is degenerate).
_MAX_SALT = 64


@dataclass(frozen=True)
class Run:
    """One cell of the run table: a grid point at one repetition."""

    index: int  # position in the table (points row-major, reps fastest)
    point: int  # grid-point index
    rep: int
    params: dict[str, Any]
    seed: int


def canonical_key(params: dict[str, Any], rep: int) -> str:
    """The order-independent identity of one ``(point, rep)`` cell."""
    axes = ",".join(f"{a}={params[a]!r}" for a in sorted(params))
    return f"{axes}|rep={rep}"


def derive_seeds(base_seed: int, keys: list[str]) -> dict[str, int]:
    """Collision-free CRC32 seeds for every canonical key.

    Raises :class:`ExperimentError` on duplicate keys (a malformed
    table) and when no salt within the search bound separates the
    seeds (practically unreachable for sane tables).
    """
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ExperimentError(
            f"run table repeats cell(s) {dupes[:3]} — every "
            f"(point, rep) must be unique"
        )
    for salt in range(_MAX_SALT):
        seeds = {
            key: zlib.crc32(f"{base_seed}|{salt}|{key}".encode("utf-8"))
            for key in keys
        }
        if len(set(seeds.values())) == len(keys):
            return seeds
    raise ExperimentError(
        f"could not derive {len(keys)} collision-free seeds within "
        f"{_MAX_SALT} salts (base_seed={base_seed})"
    )


def expand_run_table(
    grid: dict[str, list[Any]], reps: int, base_seed: int
) -> list[Run]:
    """Expand axes × reps into the seeded run table.

    Points enumerate in row-major grid order (last axis fastest, same
    convention as sweep grids) and repetitions within a point — but the
    seed of a cell depends only on its canonical ``(params, rep)``
    identity, never on its table position.
    """
    if reps < 1:
        raise ExperimentError(f"reps must be >= 1, got {reps}")
    points = expand_grid(grid)
    if not points:
        raise ExperimentError("run table needs at least one axis")
    cells = [
        (point_index, rep, params)
        for point_index, params in enumerate(points)
        for rep in range(reps)
    ]
    seeds = derive_seeds(
        base_seed, [canonical_key(params, rep) for _, rep, params in cells]
    )
    return [
        Run(
            index=index,
            point=point_index,
            rep=rep,
            params=dict(params),
            seed=seeds[canonical_key(params, rep)],
        )
        for index, (point_index, rep, params) in enumerate(cells)
    ]
