"""Comparison baselines: PathDump (end-host) and in-network approaches."""

from .pathdump import PathDumpAnalyzer, top_k_with_switchpointer
from .innetwork import PortCounterMonitor, SampledNetFlow

__all__ = [
    "PathDumpAnalyzer", "top_k_with_switchpointer",
    "SampledNetFlow", "PortCounterMonitor",
]
