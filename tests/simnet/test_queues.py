"""Unit tests for queueing disciplines."""

import pytest

from repro.simnet.packet import PRIO_HIGH, PRIO_LOW, PRIO_MEDIUM, make_udp
from repro.simnet.queues import DropTailFIFO, StrictPriorityQueue


def pkt(size=100, priority=PRIO_LOW, tag=0):
    return make_udp("a", "b", tag, 2, size, priority=priority)


class TestDropTailFIFO:
    def test_fifo_order(self):
        q = DropTailFIFO()
        first, second = pkt(tag=1), pkt(tag=2)
        q.enqueue(first)
        q.enqueue(second)
        assert q.dequeue() is first
        assert q.dequeue() is second
        assert q.dequeue() is None

    def test_tail_drop_on_byte_overflow(self):
        q = DropTailFIFO(capacity_bytes=250)
        assert q.enqueue(pkt(100))
        assert q.enqueue(pkt(100))
        assert not q.enqueue(pkt(100))  # 300 > 250
        assert q.stats.dropped == 1
        assert q.stats.bytes_dropped == 100

    def test_depth_bytes_tracks_occupancy(self):
        q = DropTailFIFO()
        q.enqueue(pkt(100))
        q.enqueue(pkt(50))
        assert q.depth_bytes == 150
        q.dequeue()
        assert q.depth_bytes == 50

    def test_max_depth_recorded(self):
        q = DropTailFIFO()
        q.enqueue(pkt(100))
        q.enqueue(pkt(100))
        q.dequeue()
        assert q.stats.max_depth_bytes == 200

    def test_len_and_bool(self):
        q = DropTailFIFO()
        assert not q
        q.enqueue(pkt())
        assert q and len(q) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailFIFO(capacity_bytes=0)

    def test_exact_fit_admitted(self):
        q = DropTailFIFO(capacity_bytes=100)
        assert q.enqueue(pkt(100))
        assert not q.enqueue(pkt(1))

    def test_stats_snapshot(self):
        q = DropTailFIFO()
        q.enqueue(pkt(100))
        q.dequeue()
        snap = q.stats.snapshot()
        assert snap["enqueued"] == 1
        assert snap["dequeued"] == 1
        assert snap["bytes_enqueued"] == 100


class TestStrictPriorityQueue:
    def test_high_priority_served_first(self):
        q = StrictPriorityQueue(levels=3)
        low = pkt(priority=PRIO_LOW, tag=1)
        high = pkt(priority=PRIO_HIGH, tag=2)
        q.enqueue(low)
        q.enqueue(high)
        assert q.dequeue() is high
        assert q.dequeue() is low

    def test_fifo_within_class(self):
        q = StrictPriorityQueue(levels=3)
        a, b = pkt(priority=PRIO_HIGH, tag=1), pkt(priority=PRIO_HIGH, tag=2)
        q.enqueue(a)
        q.enqueue(b)
        assert q.dequeue() is a
        assert q.dequeue() is b

    def test_starvation_of_low_priority(self):
        """The Fig 2(a) mechanism: low waits as long as high keeps coming."""
        q = StrictPriorityQueue(levels=3)
        low = pkt(priority=PRIO_LOW, tag=99)
        q.enqueue(low)
        for i in range(10):
            q.enqueue(pkt(priority=PRIO_HIGH, tag=i))
        served = [q.dequeue() for _ in range(10)]
        assert low not in served
        assert q.dequeue() is low

    def test_three_levels_ordered(self):
        q = StrictPriorityQueue(levels=3)
        lo = pkt(priority=PRIO_LOW)
        mid = pkt(priority=PRIO_MEDIUM)
        hi = pkt(priority=PRIO_HIGH)
        for p in (lo, mid, hi):
            q.enqueue(p)
        assert [q.dequeue() for _ in range(3)] == [hi, mid, lo]

    def test_shared_byte_budget_across_classes(self):
        q = StrictPriorityQueue(levels=3, capacity_bytes=150)
        assert q.enqueue(pkt(100, priority=PRIO_LOW))
        assert not q.enqueue(pkt(100, priority=PRIO_HIGH))
        assert q.stats.dropped == 1

    def test_out_of_range_priority_clamped(self):
        q = StrictPriorityQueue(levels=2)
        weird = pkt(priority=7)
        q.enqueue(weird)
        assert q.dequeue() is weird
        negative = pkt(priority=-1)
        q.enqueue(negative)
        assert q.dequeue() is negative

    def test_depth_of(self):
        q = StrictPriorityQueue(levels=3)
        q.enqueue(pkt(priority=PRIO_HIGH))
        q.enqueue(pkt(priority=PRIO_HIGH))
        q.enqueue(pkt(priority=PRIO_LOW))
        assert q.depth_of(PRIO_HIGH) == 2
        assert q.depth_of(PRIO_LOW) == 1

    def test_needs_at_least_one_level(self):
        with pytest.raises(ValueError):
            StrictPriorityQueue(levels=0)

    def test_empty_dequeue_returns_none(self):
        assert StrictPriorityQueue().dequeue() is None
