"""Tests for link liveness, routing reconvergence, and fault hooks
(the simnet primitives behind the link-flap and gray-failure
scenarios)."""

import pytest

from repro.simnet.device import _flow_hash
from repro.simnet.engine import AlternatingTimer, SimulationError, Simulator
from repro.simnet.packet import PROTO_UDP, FlowKey, make_udp
from repro.simnet.topology import LinkFlapper, Network, build_linear


def diamond() -> Network:
    """S1—{SPA,SPB}—S2 with one host pair."""
    net = Network()
    s1 = net.add_switch("S1")
    spa = net.add_switch("SPA")
    spb = net.add_switch("SPB")
    s2 = net.add_switch("S2")
    for spine in (spa, spb):
        net.connect(s1, spine)
        net.connect(spine, s2)
    tx = net.add_host("tx")
    rx = net.add_host("rx")
    net.connect(tx, s1)
    net.connect(rx, s2)
    net.compute_routes()
    return net


class TestLinkState:
    def test_down_link_drops_sends(self):
        net = build_linear(2, 1)
        link = net.link_between("S1", "S2")
        link.set_down()
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        net.run()
        iface = link.iface_of(net.switches["S1"])
        assert iface.dropped_link_down == 1
        assert link.down_drops == 1
        assert net.hosts["h2_0"].rx_packets == 0

    def test_up_link_delivers_again(self):
        net = build_linear(2, 1)
        link = net.link_between("S1", "S2")
        link.set_down()
        link.set_up()
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        net.run()
        assert net.hosts["h2_0"].rx_packets == 1

    def test_reconverge_routes_around_down_link(self):
        net = diamond()
        assert len(net.switches["S1"].routes_for("rx")) == 2
        net.set_link_state("S1", "SPA", False)
        routes = net.switches["S1"].routes_for("rx")
        assert len(routes) == 1
        assert routes[0].peer_node.name == "SPB"
        # traffic flows via the survivor
        net.hosts["tx"].send(make_udp("tx", "rx", 1, 9, 400))
        net.run()
        assert net.hosts["rx"].rx_packets == 1

    def test_no_reconverge_leaves_blackhole(self):
        net = diamond()
        net.set_link_state("S1", "SPA", False, reconverge=False)
        # ECMP may still pick the dead link: find a flow hashed to SPA
        candidates = net.switches["S1"].routes_for("rx")
        sport = 1
        while True:
            key = FlowKey("tx", "rx", sport, 9, PROTO_UDP)
            if candidates[_flow_hash(key) % 2].peer_node.name == "SPA":
                break
            sport += 1
        net.hosts["tx"].send(make_udp("tx", "rx", sport, 9, 400))
        net.run()
        assert net.hosts["rx"].rx_packets == 0
        assert net.link_between("S1", "SPA").down_drops == 1

    def test_restore_recovers_both_paths(self):
        net = diamond()
        net.set_link_state("S1", "SPA", False)
        net.set_link_state("S1", "SPA", True)
        assert len(net.switches["S1"].routes_for("rx")) == 2

    def test_live_graph_excludes_down_links(self):
        net = diamond()
        net.link_between("S1", "SPA").set_down()
        live = net.live_graph()
        assert not live.has_edge("S1", "SPA")
        # the physical graph keeps the edge
        assert net.graph().has_edge("S1", "SPA")


class TestSwitchFaultHooks:
    def test_drop_filter_is_silent(self):
        net = build_linear(3, 1)
        victim = FlowKey("h1_0", "h3_0", 1, 9, PROTO_UDP)
        s2 = net.switches["S2"]
        s2.drop_filter = lambda pkt: pkt.flow == victim
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 400))
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 2, 9, 400))
        net.run()
        assert s2.gray_drops == 1
        assert net.hosts["h3_0"].rx_packets == 1  # the other flow passes
        # a silently dropped packet is never counted as forwarded at S2
        assert s2.forwarded == 1

    def test_ecmp_hash_hook_polarizes(self):
        net = diamond()
        net.switches["S1"].ecmp_hash = lambda flow: 0
        for sport in range(1, 9):
            net.hosts["tx"].send(make_udp("tx", "rx", sport, 9, 400))
        net.run()
        s1 = net.switches["S1"]
        spa = net.link_between("S1", "SPA").iface_of(s1)
        spb = net.link_between("S1", "SPB").iface_of(s1)
        assert spa.tx_packets == 8 and spb.tx_packets == 0


class TestAlternatingTimer:
    def test_alternates_with_independent_dwells(self):
        sim = Simulator()
        events = []
        AlternatingTimer(sim, 0.002, lambda: events.append(("a", sim.now)),
                         0.003, lambda: events.append(("b", sim.now)),
                         start_delay=0.001)
        sim.run(until=0.012)
        names = [n for n, _ in events]
        assert names == ["a", "b", "a", "b", "a"]
        times = [round(t, 6) for _, t in events]
        assert times == [0.001, 0.003, 0.006, 0.008, 0.011]

    def test_stop_halts_firing(self):
        sim = Simulator()
        fired = []
        timer = AlternatingTimer(sim, 0.001, lambda: fired.append("a"),
                                 0.001, lambda: fired.append("b"))
        sim.run(until=0.0035)
        timer.stop()
        sim.run(until=0.010)
        assert fired == ["a", "b", "a", "b"]

    def test_rejects_nonpositive_dwell(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            AlternatingTimer(sim, 0.0, lambda: None, 0.001, lambda: None)


class TestLinkFlapper:
    def test_flap_cycle_counts_and_recovers(self):
        net = diamond()
        flapper = LinkFlapper(net, "S1", "SPA", down_for=0.002,
                              up_for=0.002, start_delay=0.001)
        net.run(until=0.0095)
        flapper.stop()
        # transitions at 1,3,5,7,9 ms: down,up,down,up,down
        assert flapper.downs == 3
        assert flapper.ups == 2
        assert flapper.flaps == 2

    def test_reconverge_delay_defers_rerouting(self):
        net = diamond()
        LinkFlapper(net, "S1", "SPA", down_for=0.004, up_for=0.004,
                    start_delay=0.001, reconverge_delay=0.002)
        net.run(until=0.002)   # down at 1 ms; reconverge due at 3 ms
        assert not net.link_between("S1", "SPA").up
        assert len(net.switches["S1"].routes_for("rx")) == 2
        net.run(until=0.0035)  # reconvergence happened
        assert len(net.switches["S1"].routes_for("rx")) == 1
