"""Unit tests for the analytic sizing models (Figs 10, 11 anchors)."""

import pytest

from repro.core.pointer import HierarchicalPointerStore
from repro.core.sizing import (SizingPoint, mphf_bytes, pointer_set_bits,
                               pointer_sets_total, push_bandwidth_bps,
                               recycling_period_ms, store_memory_bits,
                               sweep, total_switch_memory_bytes)


class TestPaperAnchors:
    """§6.1's quoted numbers."""

    def test_pointer_sizes(self):
        # "12.5 KB (n = 100K) and 125 KB (n = 1M)" per pointer set
        assert pointer_set_bits(100_000) / 8 == 12_500
        assert pointer_set_bits(1_000_000) / 8 == 125_000

    def test_mphf_sizes(self):
        # "about 70 KB (n = 100K) and 700 KB (n = 1M)"
        assert mphf_bytes(100_000) == pytest.approx(70_000)
        assert mphf_bytes(1_000_000) == pytest.approx(700_000)

    def test_minimum_memory(self):
        # "together SwitchPointer requires 82.5 KB and 825 KB" (k = 1)
        assert total_switch_memory_bytes(100_000, 10, 1) == pytest.approx(
            82_500)
        assert total_switch_memory_bytes(1_000_000, 10, 1) == pytest.approx(
            825_000)

    def test_fig10a_k3_points(self):
        # "When n=1M, α=10 and k=3, SwitchPointer consumes 3.45 MB;
        #  for n=100K, it is only 345 KB" (within rounding of the text)
        mem_1m = total_switch_memory_bytes(1_000_000, 10, 3)
        mem_100k = total_switch_memory_bytes(100_000, 10, 3)
        assert mem_1m == pytest.approx(3.45e6, rel=0.05)
        assert mem_100k == pytest.approx(345e3, rel=0.05)
        assert mem_1m / mem_100k == pytest.approx(10.0)

    def test_fig10b_bandwidth_drop_k1_to_k2(self):
        # "(n=1M, α=10): 100 Mbps (k=1) to 10 Mbps (k=2)"
        assert push_bandwidth_bps(1_000_000, 10, 1) == pytest.approx(100e6)
        assert push_bandwidth_bps(1_000_000, 10, 2) == pytest.approx(10e6)

    def test_fig11_recycling(self):
        # α=10: level 1 -> 90 ms; formula α(αʰ−1)
        assert recycling_period_ms(10, 1) == 90
        assert recycling_period_ms(10, 2) == 990
        assert recycling_period_ms(20, 1) == 380


class TestMonotonicity:
    def test_memory_increases_with_k_and_alpha(self):
        base = total_switch_memory_bytes(100_000, 10, 2)
        assert total_switch_memory_bytes(100_000, 10, 3) > base
        assert total_switch_memory_bytes(100_000, 20, 2) > base

    def test_bandwidth_decreases_with_k_and_alpha(self):
        base = push_bandwidth_bps(100_000, 10, 2)
        assert push_bandwidth_bps(100_000, 10, 3) < base
        assert push_bandwidth_bps(100_000, 20, 2) < base

    def test_bandwidth_drops_exponentially_in_k(self):
        rates = [push_bandwidth_bps(100_000, 10, k) for k in (1, 2, 3, 4)]
        for a, b in zip(rates, rates[1:]):
            assert a / b == pytest.approx(10.0)

    def test_recycling_grows_exponentially_in_level(self):
        periods = [recycling_period_ms(10, h) for h in (1, 2, 3)]
        assert periods == sorted(periods)
        assert periods[1] / periods[0] == pytest.approx(11.0)


class TestFormulaConsistency:
    def test_store_memory_matches_live_structure(self):
        for alpha, k in ((10, 1), (10, 3), (20, 2), (4, 5)):
            live = HierarchicalPointerStore(1000, alpha=alpha, k=k)
            assert live.memory_bits == store_memory_bits(1000, alpha, k)

    def test_pointer_sets_total(self):
        assert pointer_sets_total(10, 3) == 21
        assert pointer_sets_total(10, 1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            pointer_set_bits(0)
        with pytest.raises(ValueError):
            store_memory_bits(10, 1, 3)
        with pytest.raises(ValueError):
            push_bandwidth_bps(10, 10, 0)
        with pytest.raises(ValueError):
            recycling_period_ms(10, 0)


class TestSweep:
    def test_fig10_sweep_shape(self):
        points = sweep([100_000, 1_000_000], [10, 20], [1, 2, 3, 4, 5])
        assert len(points) == 2 * 2 * 5

    def test_sizing_point_row(self):
        row = SizingPoint(100_000, 10, 3).as_row()
        assert row["n"] == 100_000
        assert row["pointer_sets"] == 21
        assert row["memory_MB"] == pytest.approx(0.3325, rel=0.01)
