"""Discrete-event network simulator substrate.

This package replaces the paper's hardware testbed (Pica8 switches, OVS
datapaths, 10GE links, Linux TCP): an event-driven network with
output-queued switches, FIFO / strict-priority disciplines, a simplified
TCP Reno, and the traffic generators used by the paper's scenarios.
"""

from .engine import (AlternatingTimer, PeriodicTimer, SimulationError,
                     Simulator)
from .packet import (DEFAULT_MSS, DEFAULT_MTU, HEADER_BYTES, PRIO_HIGH,
                     PRIO_LOW, PRIO_MEDIUM, PROTO_TCP, PROTO_UDP, FlowKey,
                     Packet, TcpMeta, make_tcp, make_udp)
from .queues import (DEFAULT_CAPACITY_BYTES, DropTailFIFO, PacketQueue,
                     StrictPriorityQueue)
from .link import Interface, Link
from .device import Switch
from .host import Host
from .topology import (LinkFlapper, Network, TopologyError, build_fat_tree,
                       build_leaf_spine, build_linear, build_star)
from .tcp import TcpReceiver, TcpSender, open_tcp_flow
from .traffic import (BurstBatchPlan, TcpBulkTransfer, TcpTimedFlow,
                      UdpCbrSource, UdpSink, schedule_burst_batches)
from .stats import (InterArrivalProbe, ThroughputProbe, attach_flow_tap,
                    percentile)
from .workload import GeneratedFlow, WorkloadGenerator, WorkloadSpec

__all__ = [
    "Simulator", "PeriodicTimer", "AlternatingTimer", "SimulationError",
    "Packet", "FlowKey", "TcpMeta", "make_tcp", "make_udp",
    "PROTO_TCP", "PROTO_UDP", "PRIO_LOW", "PRIO_MEDIUM", "PRIO_HIGH",
    "DEFAULT_MTU", "DEFAULT_MSS", "HEADER_BYTES",
    "PacketQueue", "DropTailFIFO", "StrictPriorityQueue",
    "DEFAULT_CAPACITY_BYTES",
    "Link", "Interface", "Switch", "Host",
    "Network", "TopologyError", "LinkFlapper",
    "build_linear", "build_star", "build_leaf_spine", "build_fat_tree",
    "TcpSender", "TcpReceiver", "open_tcp_flow",
    "UdpCbrSource", "UdpSink", "BurstBatchPlan", "schedule_burst_batches",
    "TcpBulkTransfer", "TcpTimedFlow",
    "ThroughputProbe", "InterArrivalProbe", "attach_flow_tap", "percentile",
    "WorkloadSpec", "WorkloadGenerator", "GeneratedFlow",
]
