"""Extended debugging applications (§2.4 / the PathDump use-case list).

The paper notes "many other network monitoring and debugging problems"
solvable with the directory service and cites the PathDump use-case
catalogue.  Two of the most load-bearing ones, built on the same
primitives as the §5 apps:

* :func:`localize_packet_drops` — silent blackhole localization.  A
  victim flow stops arriving; the per-epoch pointers along its path form
  a *spatial cut*: upstream switches kept forwarding to the destination
  (bit set) while switches past the fault did not (bit clear).  The
  faulty hop is the boundary.
* :func:`check_path_conformance` — routing-policy validation.  Host
  flow records carry reconstructed trajectories; comparing them against
  the topology's shortest paths flags reroutes, loops, and
  valley-routing without touching any switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.epoch import EpochRange
from ..rpc.fabric import Breakdown
from ..simnet.packet import FlowKey
from ..simnet.topology import Network
from .analyzer import Analyzer


@dataclass
class DropLocalization:
    """Outcome of blackhole localization for one flow."""

    flow: FlowKey
    epochs: EpochRange
    #: switches on the path that still forwarded to the destination
    forwarding: list[str] = field(default_factory=list)
    #: switches past the cut that never saw the flow in the window
    silent: list[str] = field(default_factory=list)
    #: on-path switches with no pointer to consult (partial deployment):
    #: evidence gaps, counted on neither side of the cut
    uninstrumented: list[str] = field(default_factory=list)
    #: (last forwarding switch, first silent switch) — the faulty hop
    suspect_hop: Optional[tuple[str, str]] = None
    breakdown: Breakdown = field(default_factory=Breakdown)

    @property
    def localized(self) -> bool:
        return self.suspect_hop is not None


def localize_packet_drops(analyzer: Analyzer, flow: FlowKey,
                          switch_path: list[str], epochs: EpochRange,
                          *, level: Optional[int] = 1) -> DropLocalization:
    """Find the hop where ``flow``'s packets silently vanish.

    ``switch_path`` is the flow's known trajectory (from its record,
    before the blackhole), ``epochs`` the window in which the
    destination observed silence.  Pointers are pulled per switch; the
    first on-path switch whose pointer does *not* name the destination
    in the window marks the downstream side of the cut.
    """
    # uninstrumented switches (partial deployment) have no pointer to
    # pull: they are evidence *gaps*, excluded from the cut computation
    # rather than misread as silent — the boundary is found over the
    # instrumented subsequence, so localization coarsens (the suspect
    # hop may span a gap) but never flips sides
    evidenced = [sw for sw in switch_path if analyzer.is_instrumented(sw)]
    uninstrumented = [sw for sw in switch_path
                      if not analyzer.is_instrumented(sw)]
    bd = Breakdown()
    bd.add("pointer_retrieval",
           analyzer.rpc.pointer_pull_cost(len(evidenced)))
    forwarding, silent = [], []
    for sw in evidenced:
        hosts = analyzer.hosts_for(sw, epochs, level=level)
        if flow.dst in hosts:
            forwarding.append(sw)
        else:
            silent.append(sw)
    suspect: Optional[tuple[str, str]] = None
    for here, nxt in zip(evidenced, evidenced[1:]):
        if here in forwarding and nxt in silent:
            suspect = (here, nxt)
            break
    if suspect is None and forwarding and silent:
        suspect = (forwarding[-1], silent[0])
    if suspect is None and not forwarding and evidenced:
        # nothing forwarded at all: fault is upstream of the first
        # evidenced hop
        suspect = (flow.src, evidenced[0])
    return DropLocalization(flow=flow, epochs=epochs,
                            forwarding=forwarding, silent=silent,
                            uninstrumented=uninstrumented,
                            suspect_hop=suspect, breakdown=bd)


@dataclass
class ConformanceViolation:
    """One flow whose observed trajectory breaks policy."""

    flow: FlowKey
    host: str
    observed_path: list[str]
    kind: str          # "loop" | "non-shortest" | "off-policy"
    detail: str = ""


@dataclass
class ConformanceReport:
    """Outcome of a network-wide path-conformance sweep."""

    flows_checked: int = 0
    violations: list[ConformanceViolation] = field(default_factory=list)
    breakdown: Breakdown = field(default_factory=Breakdown)

    @property
    def conformant(self) -> bool:
        return not self.violations


def check_path_conformance(analyzer: Analyzer, *,
                           hosts: Optional[list[str]] = None,
                           expected_paths: Optional[
                               dict[FlowKey, list[str]]] = None
                           ) -> ConformanceReport:
    """Validate every recorded trajectory against routing policy.

    Default policy: a flow's switch path must be loop-free and one of
    the topology's shortest paths between its endpoints.  Per-flow
    ``expected_paths`` override the default (e.g. a traffic-engineering
    pin); a mismatch there reports ``off-policy``.
    """
    report = ConformanceReport()
    targets = hosts if hosts is not None else sorted(analyzer.host_agents)
    results, bd = analyzer.consult_hosts(
        targets, lambda agent: agent.query.all_flows())
    report.breakdown = bd
    net = analyzer.network
    # many flows share endpoints: compute each pair's shortest-path set
    # once per sweep, not once per flow
    shortest_cache: dict[tuple[str, str], Optional[set[tuple[str, ...]]]]
    shortest_cache = {}
    for host, res in results.items():
        for summary in res.payload:
            report.flows_checked += 1
            path = summary.switch_path
            flow = summary.flow
            if len(set(path)) != len(path):
                report.violations.append(ConformanceViolation(
                    flow=flow, host=host, observed_path=path,
                    kind="loop",
                    detail="switch repeated on path"))
                continue
            if expected_paths and flow in expected_paths:
                if path != expected_paths[flow]:
                    report.violations.append(ConformanceViolation(
                        flow=flow, host=host, observed_path=path,
                        kind="off-policy",
                        detail=f"expected {expected_paths[flow]}"))
                continue
            if not _is_shortest(net, flow, path, shortest_cache):
                report.violations.append(ConformanceViolation(
                    flow=flow, host=host, observed_path=path,
                    kind="non-shortest",
                    detail="trajectory is not a shortest path"))
    return report


def _is_shortest(net: Network, flow: FlowKey, switch_path: list[str],
                 cache: dict[tuple[str, str],
                             Optional[set[tuple[str, ...]]]]) -> bool:
    pair = (flow.src, flow.dst)
    if pair not in cache:
        try:
            cache[pair] = {tuple(p)
                           for p in net.shortest_paths(*pair)}
        except Exception:
            cache[pair] = None
    candidates = cache[pair]
    if candidates is None:
        return False
    observed = (flow.src, *switch_path, flow.dst)
    return observed in candidates
