#!/usr/bin/env python3
"""Check intra-repo markdown links in README.md and docs/*.md.

Stdlib only.  Flags relative link targets that do not exist on disk
(external ``http(s)``/``mailto`` links and pure ``#anchor`` references
are skipped).  Exit status 1 when any link is broken.

Usage::

    python tools/check_links.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: [text](target) — excluding images' leading ! is unnecessary: image
#: targets must exist too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def default_files() -> list[Path]:
    files = [REPO / "README.md"]
    docs = REPO / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.exists()]


def broken_links(md_file: Path) -> list[tuple[int, str]]:
    out = []
    text = md_file.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                out.append((lineno, target))
    return out


def main(argv: list[str]) -> int:
    files = ([Path(a).resolve() for a in argv] if argv
             else default_files())
    bad = 0
    for md_file in files:
        for lineno, target in broken_links(md_file):
            rel = md_file.relative_to(REPO) \
                if md_file.is_relative_to(REPO) else md_file
            print(f"{rel}:{lineno}: broken link -> {target}")
            bad += 1
    if bad:
        print(f"{bad} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
