"""FaultPlan composition edge cases: same-switch faults, ordering,
late-scheduled faults, and lifecycle bookkeeping."""

import pytest

from repro.deployment import SwitchPointerDeployment
from repro.faults import (ACTIVE, FAULTS, FaultContext, FaultError,
                          FaultPlan, HEALED, PENDING)
from repro.simnet.packet import PROTO_UDP, FlowKey, Packet
from repro.simnet.topology import build_leaf_spine, build_linear


def _ctx(net, deploy=None):
    return FaultContext(net, deploy)


class TestSameSwitchComposition:
    """Two faults on one switch must compose and unwind cleanly."""

    def test_drop_and_polarization_coexist_on_one_switch(self):
        net = build_leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=1)
        sw = net.switches["leaf0"]
        victim = FlowKey("h0_0", "h1_0", 5, 5, PROTO_UDP)
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="leaf0", flows=(victim,),
                       start=0.001, stop=0.003)
        plan.add_named("ecmp-polarization", switch="leaf0",
                       start=0.001, stop=0.003)
        plan.schedule(_ctx(net))
        net.run(until=0.002)
        assert sw.drop_filter is not None and sw.ecmp_hash is not None
        assert sw.drop_filter(Packet(flow=victim, size=100))
        net.run(until=0.004)
        # both healed: the switch is back to its pristine hooks
        assert sw.drop_filter is None and sw.ecmp_hash is None
        assert all(f.state == HEALED for f in plan)

    def test_overlapping_drops_heal_in_any_order(self):
        """A(1..3ms) and B(2..4ms) on one switch: healing A mid-chain
        must not disable B, and healing B must not resurrect A."""
        net = build_linear(2, hosts_per_switch=1)
        sw = net.switches["S1"]
        fa = FlowKey("h1_0", "h2_0", 1, 1, PROTO_UDP)
        fb = FlowKey("h1_0", "h2_0", 2, 2, PROTO_UDP)
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="S1", flows=(fa,),
                       start=0.001, stop=0.003)
        plan.add_named("silent-drop", switch="S1", flows=(fb,),
                       start=0.002, stop=0.004)
        plan.schedule(_ctx(net))
        net.run(until=0.0035)       # A healed, B still active
        assert not sw.drop_filter(Packet(flow=fa, size=100))
        assert sw.drop_filter(Packet(flow=fb, size=100))
        net.run(until=0.005)        # both healed
        if sw.drop_filter is not None:   # inert residue is allowed
            assert not sw.drop_filter(Packet(flow=fa, size=100))
            assert not sw.drop_filter(Packet(flow=fb, size=100))

    def test_two_drop_faults_chain_their_filters(self):
        net = build_linear(2, hosts_per_switch=1)
        sw = net.switches["S1"]
        f1 = FlowKey("h1_0", "h2_0", 1, 1, PROTO_UDP)
        f2 = FlowKey("h1_0", "h2_0", 2, 2, PROTO_UDP)
        survivor = FlowKey("h1_0", "h2_0", 3, 3, PROTO_UDP)
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="S1", flows=(f1,),
                       start=0.001)
        plan.add_named("silent-drop", switch="S1", flows=(f2,),
                       start=0.002, stop=0.004)
        plan.schedule(_ctx(net))
        net.run(until=0.003)
        # while both are active, both slices drop, bystanders pass
        assert sw.drop_filter(Packet(flow=f1, size=100))
        assert sw.drop_filter(Packet(flow=f2, size=100))
        assert not sw.drop_filter(Packet(flow=survivor, size=100))
        net.run(until=0.005)
        # the second fault healed: the first fault's filter is intact
        assert sw.drop_filter(Packet(flow=f1, size=100))
        assert not sw.drop_filter(Packet(flow=f2, size=100))


class TestOrdering:
    def test_heal_before_inject_rejected_on_mutated_plan(self):
        """A plan whose fault was mutated into stop<=start after
        construction still refuses to schedule it."""
        net = build_linear(2, hosts_per_switch=1)
        plan = FaultPlan()
        fault = plan.add_named("silent-drop", switch="S1",
                               start=0.010, stop=0.020)
        fault.p["stop"] = 0.005     # sneak past the constructor check
        with pytest.raises(FaultError, match="heal scheduled before"):
            plan.schedule(_ctx(net))

    def test_double_injection_rejected(self):
        net = build_linear(2, hosts_per_switch=1)
        fault = FAULTS.create("silent-drop", switch="S1", start=0.001)
        plan = FaultPlan([fault])
        plan.schedule(_ctx(net))
        net.run(until=0.002)
        with pytest.raises(FaultError, match="injected twice"):
            fault._fire_inject(_ctx(net))

    def test_heal_without_inject_rejected(self):
        net = build_linear(2, hosts_per_switch=1)
        fault = FAULTS.create("silent-drop", switch="S1", start=0.010)
        with pytest.raises(FaultError, match="must be active"):
            fault._fire_heal(_ctx(net))


class TestLateFault:
    """A fault scheduled after the run (and diagnosis) window ends."""

    def test_fault_past_run_end_stays_pending(self):
        net = build_linear(2, hosts_per_switch=1)
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="S1", start=0.050)
        plan.schedule(_ctx(net))
        net.run(until=0.010)        # "diagnosis" would happen here
        assert [f.spec.name for f in plan.pending] == ["silent-drop"]
        assert net.switches["S1"].drop_filter is None

    def test_pending_fault_fires_if_the_run_continues(self):
        net = build_linear(2, hosts_per_switch=1)
        plan = FaultPlan()
        fault = plan.add_named("silent-drop", switch="S1", start=0.050)
        plan.schedule(_ctx(net))
        net.run(until=0.010)
        assert fault.state == PENDING
        net.run(until=0.060)
        assert fault.state == ACTIVE
        assert net.switches["S1"].drop_filter is not None


class TestPlanBookkeeping:
    def test_schedule_twice_rejected(self):
        net = build_linear(2, hosts_per_switch=1)
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="S1", start=0.001)
        plan.schedule(_ctx(net))
        with pytest.raises(FaultError, match="already scheduled"):
            plan.schedule(_ctx(net))

    def test_add_after_schedule_rejected(self):
        net = build_linear(2, hosts_per_switch=1)
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="S1", start=0.001)
        plan.schedule(_ctx(net))
        with pytest.raises(FaultError, match="already-scheduled"):
            plan.add_named("silent-drop", switch="S2", start=0.002)

    def test_status_reports_every_fault(self):
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="S1", start=0.001)
        plan.add_named("link-down", a="S1", b="S2", start=0.002)
        lines = plan.status()
        assert len(lines) == 2
        assert "silent-drop" in lines[0] and "link-down" in lines[1]

    def test_unknown_switch_fails_at_schedule_not_fire_time(self):
        net = build_linear(2, hosts_per_switch=1)
        plan = FaultPlan()
        plan.add_named("silent-drop", switch="S99", start=0.001)
        with pytest.raises(FaultError, match="unknown switch"):
            plan.schedule(_ctx(net))

    def test_deployment_requiring_fault_without_deployment(self):
        net = build_linear(2, hosts_per_switch=1)
        plan = FaultPlan()
        plan.add_named("clock-skew", skew_ms=2.0, start=0.001)
        plan.schedule(_ctx(net, deploy=None))
        with pytest.raises(FaultError, match="needs an instrumented"):
            net.run(until=0.002)

    def test_clock_skew_heals_to_original_offsets(self):
        net = build_linear(2, hosts_per_switch=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
        before = {n: dp.clock.skew_s
                  for n, dp in deploy.datapaths.items()}
        plan = FaultPlan()
        plan.add_named("clock-skew", skew_ms=3.0, start=0.001,
                       stop=0.005)
        plan.schedule(_ctx(net, deploy))
        net.run(until=0.002)
        skews = {n: dp.clock.skew_s for n, dp in deploy.datapaths.items()}
        assert any(abs(s) > 0 for s in skews.values())
        assert all(abs(s) <= 3e-3 for s in skews.values())
        net.run(until=0.006)
        after = {n: dp.clock.skew_s for n, dp in deploy.datapaths.items()}
        assert after == before
