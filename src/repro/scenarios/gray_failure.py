"""Silent packet drop / gray failure: a switch blackholes some flows.

A gray-failing switch keeps its links up and its counters plausible but
silently discards a deterministic slice of the flows crossing it (a
corrupted TCAM entry, a failing ASIC lane).  Nothing alarms on the
switch itself — the paper's directory service localizes the fault from
the *outside*: upstream pointers keep naming the victim's destination
during the silence window, the faulty hop and everything past it never
do, and the boundary of that spatial cut is the suspect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analyzer.apps import (Verdict, diagnose_gray_failure,
                             diagnose_gray_failure_online)
from ..core.epoch import EpochRange
from ..deployment import SwitchPointerDeployment
from ..rpc.fabric import LatencyModel
from ..simnet.packet import PRIO_LOW, FlowKey
from ..simnet.topology import Network, build_linear
from ..simnet.traffic import UdpCbrSource, UdpSink
from ..sweep import SweepSpec, register_sweep
from .base import Knob, Scenario, ScenarioSpec, register
from .common import (background_knobs, directory_knobs, fault_knobs,
                     install_fault_knobs, launch_background)


@dataclass
class GrayFailureResult:
    """Output of one gray-failure run."""

    deployment: SwitchPointerDeployment
    network: Network
    fault_switch: str
    fault_time: float
    silence_epochs: EpochRange
    affected: list[FlowKey] = field(default_factory=list)
    healthy: list[FlowKey] = field(default_factory=list)
    gray_drops: int = 0


@register
class GrayFailureScenario(Scenario):
    """Every other flow on a 4-switch chain vanishes at ``fault_switch``.

    ``n_flows`` slow CBR flows run h1_i→h4_i across S1–S4.  At
    ``fault_time`` the fault switch starts silently dropping the
    even-indexed flows (the deterministic slice) while forwarding the
    rest untouched — the defining gray-failure asymmetry.  Diagnosis
    pulls per-epoch pointers along the recorded path for the silence
    window and finds the spatial cut.
    """

    spec = ScenarioSpec(
        name="gray-failure",
        summary="a switch silently drops a deterministic slice of flows "
                "(blackhole localization)",
        paper_ref="§2.4 extended use case; PathDump's blackhole "
                  "use-case catalogue",
        expected_diagnosis="gray-failure (suspect: the injected switch)",
        knobs={
            "n_flows": Knob(4, "concurrent h1_i→h4_i flows (even-indexed "
                               "ones are dropped)"),
            "fault_switch": Knob("S3", "the gray-failing switch"),
            "fault_time": Knob(0.020, "when the silent drops begin (s)"),
            "duration": Knob(0.050, "total run time (s)"),
            "rate_mbps": Knob(2.0, "per-flow CBR rate (Mbit/s)"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(2, "pointer hierarchy depth"),
            "records_per_host": Knob(0, "hostd record-table bound "
                                        "(0 = unbounded)"),
            "record_shards": Knob(1, "record-store shards per host "
                                     "agent (>1 = sharded store)"),
            "ingest_batch": Knob(1, "sniffed packets decoded per "
                                    "ingest batch"),
            "record_backend": Knob("auto", "record-store backend: "
                                           "flat, sharded, columnar, "
                                           "or auto"),
            "online": Knob(1, "diagnose through an online session "
                              "(RPCs advance simulated time; 0 = "
                              "offline zero-cost queries)"),
            "rpc_latency_ms": Knob(0.0, "extra per-RPC latency charged "
                                        "in simulated time (online "
                                        "sessions only)"),
            "stale_after_ms": Knob(0.0, "staleness budget: verdicts "
                                        "taking longer (simulated) are "
                                        "stamped stale (0 = no budget)"),
            "overrun_ms": Knob(0.0, "how long the CBR sources keep "
                                    "transmitting past the run window "
                                    "(online diagnosis then races live "
                                    "ingestion)"),
            **background_knobs(),
            **fault_knobs(),
            **directory_knobs(),
        },
        aliases=("silent-drop",),
        smoke_knobs={"n_flows": 2, "duration": 0.040},
        faults=("silent-drop",),
        verdict_states=("complete", "degraded", "stale"),
    )

    def build(self) -> None:
        p = self.p
        n = p["n_flows"]
        net = build_linear(4, hosts_per_switch=n)
        if p["fault_switch"] not in net.switches:
            raise ValueError(
                f"fault_switch must be one of "
                f"{sorted(net.switches)}, got {p['fault_switch']!r}")
        deploy = SwitchPointerDeployment(
            net, alpha_ms=p["alpha_ms"], k=p["k"], epsilon_ms=1,
            delta_ms=2,
            latency_model=LatencyModel().with_extra(
                p["rpc_latency_ms"] * 1e-3),
            records_per_host=p["records_per_host"] or None,
            record_shards=p["record_shards"],
            ingest_batch=p["ingest_batch"],
            record_backend=p["record_backend"],
            directory_backend=p["directory_backend"],
            directory_bits=p["directory_bits"],
            directory_hashes=p["directory_hashes"])
        self.network, self.deployment = net, deploy

        self.affected: list[FlowKey] = []
        self.healthy: list[FlowKey] = []
        rate = p["rate_mbps"] * 1e6
        for i in range(n):
            UdpSink(net.hosts[f"h4_{i}"], 9000 + i)
            src = UdpCbrSource(net.sim, net.hosts[f"h1_{i}"], f"h4_{i}",
                               sport=9000 + i, dport=9000 + i,
                               rate_bps=rate, packet_size=500,
                               priority=PRIO_LOW, start=0.001,
                               duration=p["duration"] - 0.002 +
                                        p["overrun_ms"] * 1e-3)
            (self.affected if i % 2 == 0 else self.healthy).append(src.flow)

        # the fault, declared through the registry: silently drop the
        # even-indexed flow slice at the fault switch from fault_time on
        self.drop_fault = self.add_fault(
            "silent-drop", switch=p["fault_switch"],
            flows=tuple(self.affected), start=p["fault_time"])
        # ambient stressor knobs (clock skew, partial deployment, agent
        # crash).  S1 is the chain's CherryPick embedder: stripping it
        # would erase every host record, so it is always spared.
        install_fault_knobs(self, extra_spare=("S1",))

        # the background flow population (the sweep flows= axis): load
        # on every record table while the blackhole is localized.  The
        # victim destinations are excluded — localization cuts on
        # "which hops stopped naming the destination", so unrelated
        # traffic to the same destination would legitimately erase the
        # cut (the population models *other* tenants' flows)
        self.background = launch_background(
            net, p, duration=p["duration"],
            exclude=[f"h4_{i}" for i in range(n)])

    def run(self) -> None:
        self.network.run(until=self.p["duration"])

    def collect(self) -> dict:
        p = self.p
        net, deploy = self.network, self.deployment
        clock = deploy.datapaths["S1"].clock
        fault_epoch = clock.epoch_of(p["fault_time"])
        if p["fault_time"] > clock.epoch_start(fault_epoch):
            fault_epoch += 1       # fault mid-epoch: that epoch is mixed
        if p["skew_ms"] > 0:
            # per-device offsets span ±skew_ms, so a switch may run up
            # to 2·skew_ms ahead of S1 and mark that much more
            # pre-fault epoch residue; widen the window's lower edge
            # so the residue is never misread as forwarding-in-silence
            fault_epoch += math.ceil(2 * p["skew_ms"] / p["alpha_ms"])
        self.silence_epochs = EpochRange(fault_epoch,
                                         clock.epoch_of(net.sim.now))
        self.payload = GrayFailureResult(
            deployment=deploy, network=net,
            fault_switch=p["fault_switch"], fault_time=p["fault_time"],
            silence_epochs=self.silence_epochs,
            affected=list(self.affected), healthy=list(self.healthy),
            gray_drops=net.switches[p["fault_switch"]].gray_drops)
        bg = self.background
        return {
            "gray_drops": self.payload.gray_drops,
            "silence_epochs": (self.silence_epochs.lo,
                               self.silence_epochs.hi),
            "affected_flows": len(self.affected),
            "uninstrumented_switches": deploy.uninstrumented_switches,
            "flow_count": p["n_flows"] +
                          (bg.n_flows if bg is not None else 0),
            "bg_packets_delivered": (bg.delivered
                                     if bg is not None else 0),
        }

    def diagnose(self) -> list[Verdict]:
        p = self.p
        analyzer = self.deployment.analyzer
        if not p["online"]:
            return [diagnose_gray_failure(
                        analyzer, flow,
                        silence_epochs=self.silence_epochs)
                    for flow in self.affected]
        # online: one session per trigger window — RPCs advance the
        # simulated clock, evidence arrives as delta rounds, and a host
        # that dies mid-query degrades the verdict instead of erroring
        stale_ms = p["stale_after_ms"]
        session = analyzer.open_session(
            stale_after_s=stale_ms * 1e-3 if stale_ms else None)
        with session:
            return [diagnose_gray_failure_online(
                        analyzer, flow,
                        silence_epochs=self.silence_epochs,
                        session=session)
                    for flow in self.affected]


register_sweep(SweepSpec(
    scenario="gray-failure",
    summary="blackhole localization as the concurrent flow population "
            "(and record tables) scales",
    expect_problem="gray-failure",
    # diagnose_gray_failure reports problem="gray-failure" even when
    # localization finds nothing — a point only counts as correct when
    # a verdict names the injected switch
    expect_suspect_knob="fault_switch",
    axes={
        "flows": "bg_flows",
        "victims": "n_flows",
        "records": "records_per_host",
        "alpha_ms": "alpha_ms",
        "shards": "record_shards",
        "batch": "ingest_batch",
        "backend": "record_backend",
        "mix": "bg_mix",
        "skew_ms": "skew_ms",
    },
    default_grid={"flows": (0, 200, 1000), "victims": (4, 16)},
    nightly_grid={"flows": (0, 200), "victims": (4,)},
    base_knobs={"record_shards": 4, "ingest_batch": 8},
))

register_sweep(SweepSpec(
    scenario="gray-failure",
    name="clock-skew",
    summary="blackhole localization accuracy as per-device clock skew "
            "grows toward and past the ε bound",
    expect_problem="gray-failure",
    expect_suspect_knob="fault_switch",
    axes={
        "skew_ms": "skew_ms",
        "victims": "n_flows",
        "alpha_ms": "alpha_ms",
    },
    # α = 10 ms here and offsets span ±skew_ms, so pairwise skew
    # reaches 2·skew_ms: the whole default grid stays within the
    # ε = α bound and must diagnose correctly; pushing the axis past
    # 5.0 charts the degradation curve beyond the bound
    default_grid={"skew_ms": (0.0, 2.0, 5.0)},
    nightly_grid={"skew_ms": (0.0, 2.0)},
))

register_sweep(SweepSpec(
    scenario="gray-failure",
    name="rpc-latency",
    summary="online diagnosis as per-RPC latency stretches the query "
            "window across a mid-diagnosis agent crash",
    expect_problem="gray-failure",
    expect_suspect_knob="fault_switch",
    axes={
        "rpc_ms": "rpc_latency_ms",
        "victims": "n_flows",
        "stale_ms": "stale_after_ms",
    },
    default_grid={"rpc_ms": (0.0, 2.0, 5.0, 10.0, 20.0)},
    nightly_grid={"rpc_ms": (0.0, 2.0)},
    # h4_0's agent dies at 100 ms, with the sources still transmitting:
    # at rpc_ms=0 the diagnosis finishes first (the crash stays
    # pending); beyond that it races the query window — the verdict
    # degrades (missing h4_0), and past ~5.4 ms the path query itself
    # is lost before the crash, so localization fails too
    base_knobs={"n_flows": 2, "overrun_ms": 250.0,
                "crash_host": "h4_0", "crash_at": 0.1},
))

register_sweep(SweepSpec(
    scenario="gray-failure",
    name="directory-bits",
    summary="blackhole localization accuracy and pointer false-positive "
            "rate as the per-set sketch bit budget shrinks",
    expect_problem="gray-failure",
    expect_suspect_knob="fault_switch",
    axes={
        "dir_bits": "directory_bits",
        "backend": "directory_backend",
        "hashes": "directory_hashes",
        "victims": "n_flows",
    },
    # the default topology has 16 hosts, so the exact bitmap costs
    # S = 16 bits per set: dir_bits=0 saturates (bit-identical to
    # exact, FPR 0), and shrinking budgets chart the memory↔accuracy
    # trade — false positives inflate the search radius first, then
    # erase the spatial cut and cost localization itself
    default_grid={"dir_bits": (0, 12, 8, 4, 2)},
    nightly_grid={"dir_bits": (0, 8)},
    base_knobs={"directory_backend": "bloom"},
))

register_sweep(SweepSpec(
    scenario="gray-failure",
    name="partial-deployment",
    summary="blackhole localization with only a fraction of switches "
            "instrumented (host-only evidence elsewhere)",
    expect_problem="gray-failure",
    expect_suspect_knob="fault_switch",
    axes={
        "deploy": "deploy_frac",
        "victims": "n_flows",
        "flows": "bg_flows",
    },
    default_grid={"deploy": (1.0, 0.75, 0.5)},
    nightly_grid={"deploy": (1.0, 0.75)},
    # the fault switch stays instrumented so the nightly points are
    # deterministic: the cut boundary may coarsen across stripped
    # neighbors but still names S3 (the embedder S1 is always spared
    # by the scenario itself)
    base_knobs={"deploy_spare": "S3"},
))
